"""Command-line front end: ``python -m repro lint`` / ``repro-lint``.

Exit codes: 0 — no findings; 1 — findings reported; 2 — usage error
(unknown rule id, missing path).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.lint.engine import lint_paths, rule_catalog


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Lint options, shared by the subcommand and the console script."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src); directories "
        "are walked recursively, skipping lint_fixtures/",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="IDS",
        help="only report these rule ids (comma-separated; a family "
        "prefix like DET selects the family); repeatable",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="IDS",
        help="drop these rule ids (comma-separated, prefix-matched; "
        "wins over --select); repeatable",
    )
    parser.add_argument(
        "--format",
        dest="format",
        default="text",
        choices=("text", "json"),
        help="report format: human-readable lines or a JSON document",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog (id + description) and exit 0",
    )


def _known_prefixes() -> List[str]:
    catalog = rule_catalog()
    prefixes = set(catalog)
    prefixes.update(rule_id[:3] for rule_id in catalog)
    return sorted(prefixes)


def _validate_ids(entries: Optional[Sequence[str]], option: str) -> None:
    if not entries:
        return
    known = _known_prefixes()
    for entry in entries:
        for part in entry.split(","):
            part = part.strip().upper()
            if part and part not in known:
                raise ValueError(
                    f"{option} {part!r} matches no known rule id or family; "
                    f"known: {', '.join(known)}"
                )


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation (the subcommand entry point)."""
    if args.list_rules:
        for rule_id, description in rule_catalog().items():
            print(f"{rule_id}  {description}")
        return 0
    _validate_ids(args.select, "--select")
    _validate_ids(args.ignore, "--ignore")
    try:
        report = lint_paths(args.paths, select=args.select, ignore=args.ignore)
    except FileNotFoundError as error:
        print(f"repro-lint: error: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for finding in report.findings:
            print(finding.format())
        summary = (
            f"{len(report.findings)} finding(s) in {report.files_checked} "
            f"file(s) ({report.suppressed} suppressed)"
        )
        print(summary, file=sys.stderr)
    return report.exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Domain-aware static analysis: determinism, unit-suffix, "
            "concurrency and immutability rules for the DynamoLLM "
            "reproduction."
        ),
    )
    add_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run(args)
    except ValueError as error:
        print(f"repro-lint: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
