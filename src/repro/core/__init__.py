"""DynamoLLM core: the energy-management framework itself.

The hierarchy of controllers (cluster / pool / instance), the
energy-optimisation problem and its hierarchical decomposition, the
re-sharding planner with minimal weight movement, the reconfiguration
overhead accounting, and the emergency handling for mis-predictions.

The controllers depend only on abstractions this package owns: the
protocols in :mod:`repro.core.interfaces` describe the hardware surface
they drive, and concrete implementations (``repro.cluster.*``) are
injected at the composition roots.  Shared leaf hardware cost models
(frequency-switch overheads, VM boot times) live in
:mod:`repro.core.hw`.
"""

from repro.core.hw import (
    COLD_BOOT_BREAKDOWN_S,
    DEFAULT_SWITCH_OVERHEAD_S,
    OPTIMIZED_SWITCH_OVERHEAD_S,
    WARM_BOOT_BREAKDOWN_S,
    cold_boot_time_s,
    warm_boot_time_s,
)
from repro.core.interfaces import (
    BootCostModel,
    ClusterLike,
    FrequencyPlanLike,
    InstanceLike,
    QueuedRequestLike,
)
from repro.core.resharding import (
    ShardLayout,
    ReshardPlan,
    plan_reshard,
    reshard_time_units,
    requires_downtime,
    overhead_matrix,
    CANONICAL_LAYOUTS,
)
from repro.core.overheads import OverheadModel
from repro.core.optimizer import (
    InstanceAllocation,
    ShardingPlan,
    plan_sharding,
    plan_global,
)
from repro.core.pools import PoolState
from repro.core.cluster_manager import ClusterManager
from repro.core.pool_manager import PoolManager
from repro.core.instance_manager import InstanceManager
from repro.core.framework import DynamoLLM, ControllerKnobs, ControllerEpochs

__all__ = [
    "COLD_BOOT_BREAKDOWN_S",
    "DEFAULT_SWITCH_OVERHEAD_S",
    "OPTIMIZED_SWITCH_OVERHEAD_S",
    "WARM_BOOT_BREAKDOWN_S",
    "cold_boot_time_s",
    "warm_boot_time_s",
    "BootCostModel",
    "ClusterLike",
    "FrequencyPlanLike",
    "InstanceLike",
    "QueuedRequestLike",
    "ShardLayout",
    "ReshardPlan",
    "plan_reshard",
    "reshard_time_units",
    "requires_downtime",
    "overhead_matrix",
    "CANONICAL_LAYOUTS",
    "OverheadModel",
    "InstanceAllocation",
    "ShardingPlan",
    "plan_sharding",
    "plan_global",
    "PoolState",
    "ClusterManager",
    "PoolManager",
    "InstanceManager",
    "DynamoLLM",
    "ControllerKnobs",
    "ControllerEpochs",
]
