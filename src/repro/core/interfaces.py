"""Protocols the controller hierarchy is written against.

The core layer owns its abstractions: every interaction the cluster /
pool / instance managers have with the simulated hardware goes through
the :class:`typing.Protocol` types below, and the concrete
implementations (``repro.cluster.GPUCluster``,
``repro.cluster.InferenceInstance``, ...) are injected at the
composition roots (``api.engine``, ``api.fluid_engine``,
``experiments.runner``, ``policies.base``).  ``cluster`` sits a layer
*above* ``core`` in the declared architecture, so it legally implements
these protocols while ``core`` never imports it — that inversion is
what lets alternative hardware models (heterogeneous fleets, other GPU
generations) slot in under an unchanged control plane.

The protocols capture exactly the member surface the five controller
modules use — no more.  The frozen value types the managers exchange
(:class:`~repro.core.optimizer.ShardingPlan`,
:class:`~repro.core.optimizer.InstanceAllocation`,
:class:`~repro.core.resharding.ShardLayout`,
:class:`~repro.core.resharding.ReshardPlan`) already live in ``core``
and are re-exported here so implementors need a single import.

All protocols are :func:`typing.runtime_checkable`: conformance is
pinned both structurally (mypy, ``tests/typing_conformance.py``) and at
runtime (``isinstance`` checks in ``tests/test_interfaces.py``).
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.core.optimizer import InstanceAllocation, ShardingPlan
from repro.core.resharding import ReshardPlan, ShardLayout
from repro.llm.gpu import GPUSpec, ServerSpec
from repro.workload.request import Request, RequestOutcome

__all__ = [
    "QueuedRequestLike",
    "FrequencyPlanLike",
    "BootCostModel",
    "InstanceLike",
    "ClusterLike",
    "InstanceAllocation",
    "ShardingPlan",
    "ShardLayout",
    "ReshardPlan",
]


@runtime_checkable
class QueuedRequestLike(Protocol):
    """A request parked inside an instance (waiting or running).

    The managers move these between instances opaquely; the only member
    they read is the underlying workload request (to re-route it).
    """

    @property
    def request(self) -> Request: ...


@runtime_checkable
class FrequencyPlanLike(Protocol):
    """The DVFS state of one instance, as the controllers see it."""

    @property
    def current_frequency_mhz(self) -> int: ...

    @property
    def gpu(self) -> GPUSpec: ...


@runtime_checkable
class BootCostModel(Protocol):
    """Server provisioning costs (paper Table V).

    ``proactive`` distinguishes DynamoLLM's ahead-of-epoch warm boots
    from the baselines' critical-path cold boots.
    """

    @property
    def proactive(self) -> bool: ...

    def boot_time_s(self, proactive: bool) -> float: ...


@runtime_checkable
class InstanceLike(Protocol):
    """One tensor-parallel inference instance, as the controllers see it.

    Covers request intake (``enqueue``/``adopt``/``steal_waiting``/
    ``squash_stale``), DVFS (``frequency``/``set_frequency``) and the
    introspection the routing and emergency-handling logic needs.
    """

    @property
    def instance_id(self) -> str: ...

    @property
    def tensor_parallelism(self) -> int: ...

    @property
    def accepting(self) -> bool: ...

    @property
    def gpu_count(self) -> int: ...

    @property
    def queue_length(self) -> int: ...

    @property
    def load_estimate_tps(self) -> float: ...

    @property
    def frequency(self) -> FrequencyPlanLike: ...

    def is_offline(self, now: float) -> bool: ...

    def oldest_wait_s(self, now: float) -> float: ...

    def enqueue(self, request: Request, now: float) -> object: ...

    def set_frequency(self, frequency_mhz: int, now: float = 0.0) -> bool: ...

    def adopt(self, states: Sequence[Any], now: float) -> None: ...

    def steal_waiting(self, count: int) -> Sequence[QueuedRequestLike]: ...

    def squash_stale(
        self, now: float, wait_threshold_s: float
    ) -> Sequence[RequestOutcome]: ...

    def reorder_queue_by_deadline(
        self, slo_lookup: Callable[[Request], float]
    ) -> None: ...


@runtime_checkable
class ClusterLike(Protocol):
    """The GPU fleet, as the controllers see it.

    Instance lifecycle (create / remove / reshard), server scaling with
    provisioning delays, and the read-only views the managers route and
    size against.
    """

    @property
    def max_servers(self) -> int: ...

    @property
    def optimized_frequency_switching(self) -> bool: ...

    @property
    def server_spec(self) -> ServerSpec: ...

    @property
    def provisioner(self) -> BootCostModel: ...

    @property
    def instances(self) -> Mapping[str, InstanceLike]: ...

    def scale_to(self, target_servers: int, now: float) -> int: ...

    def collect_provisioned(self, now: float) -> int: ...

    def create_instance(
        self,
        tensor_parallelism: int,
        pool: str = ...,
        request_type: str = ...,
    ) -> Optional[InstanceLike]: ...

    def remove_instance(self, instance_id: str) -> Sequence[QueuedRequestLike]: ...

    def reshard_instance(
        self,
        instance_id: str,
        new_tensor_parallelism: int,
        now: float,
        transfer_time_s: float,
        sync_time_s: float,
        requires_downtime: bool,
    ) -> bool: ...

    def instances_in_pool(self, pool: str) -> Sequence[InstanceLike]: ...
