"""Cluster manager: request steering and scale-out/in (Section IV-B/D).

The cluster manager sits at the top of the controller hierarchy.  It

* predicts the type of each incoming request (via the output-length
  predictor) and forwards it to the matching pool, spilling to the next
  larger pool when the target pool is overloaded;
* at every scale epoch, forecasts the per-pool load for the next epoch
  and computes the minimal number of servers per pool assuming the
  highest-performance configuration (TP8 at the maximum frequency);
* applies the fragmentation-handling rule: each pool (except the one
  serving the largest requests) is assigned one instance less than its
  peak demand and the leftover load is redirected to the next larger
  pool, so over-provisioning concentrates in a single pool.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.interfaces import ClusterLike
from repro.core.pools import PoolState, build_pool_states
from repro.perf.profile import EnergyPerformanceProfile
from repro.sim.events import EventLog
from repro.workload.classification import (
    ClassificationScheme,
    RequestType,
    equivalent_prompt_tokens,
    type_intensity,
)
from repro.workload.load_predictor import TemplateLoadPredictor
from repro.workload.predictor import OutputLengthPredictor
from repro.workload.request import Request


@dataclass
class ClusterManager:
    """Top-level controller: request steering and server scaling."""

    scheme: ClassificationScheme
    profile: EnergyPerformanceProfile
    cluster: ClusterLike
    predictor: OutputLengthPredictor
    load_predictor: TemplateLoadPredictor = field(default_factory=TemplateLoadPredictor)
    events: EventLog = field(default_factory=EventLog)
    scale_instances: bool = True
    fragmentation_handling: bool = True
    static_server_budgets: Optional[Dict[str, int]] = None
    min_servers_per_pool: int = 0
    #: Capacity headroom: pools are sized for ``headroom x`` the predicted
    #: load so that bursts between scale epochs do not violate the SLO.
    capacity_headroom: float = 1.25
    #: When True, budgets are handed out in whole nodes assuming TP8
    #: instances (used by policies that cannot re-shard, e.g. ScaleInst).
    node_granularity: bool = False
    pools: Dict[str, PoolState] = field(init=False)

    def __post_init__(self) -> None:
        self.pools = build_pool_states(self.scheme)
        if self.static_server_budgets:
            for pool_name, budget in self.static_server_budgets.items():
                if pool_name in self.pools:
                    self.pools[pool_name].server_budget = budget
                    self.pools[pool_name].gpu_budget = (
                        budget * self.cluster.server_spec.gpus_per_server
                    )

    # ------------------------------------------------------------------
    # Request steering
    # ------------------------------------------------------------------
    def classify(self, request: Request) -> RequestType:
        """Predict the request type (input length exact, output predicted)."""
        predicted = self.predictor.predict(request)
        request.predicted_type = predicted.name
        return predicted

    def pool_for(
        self, request: Request, overloaded: Optional[Mapping[str, bool]] = None
    ) -> str:
        """Pool a request should go to, spilling when the pool is overloaded.

        ``overloaded`` maps pool name to a boolean overload flag supplied
        by the pool managers (possibly lazily evaluated — at most two
        pools are consulted per request); spilled requests go to the
        next larger pool.
        """
        predicted = self.classify(request)
        pool_name = self.scheme.pool_of(predicted)
        pool = self.pools[pool_name]
        pool.observe_arrival(
            equivalent_prompt_tokens(
                request.input_tokens, predicted.name, pool.governing_type
            )
        )
        # Fragmentation spill: a configured fraction of the pool's load is
        # redirected to the next larger pool (Section IV-B).
        if pool.spill_fraction > 0.0:
            spill_hash = (request.request_id % 100) / 100.0
            if spill_hash < pool.spill_fraction:
                pool_name = self.scheme.next_larger_pool(pool_name)
        # Overload spill.
        if overloaded and overloaded.get(pool_name):
            larger = self.scheme.next_larger_pool(pool_name)
            if larger != pool_name and not overloaded.get(larger, False):
                pool_name = larger
        return pool_name

    # ------------------------------------------------------------------
    # Load accounting
    # ------------------------------------------------------------------
    def roll_load_window(self, now: float, dt: float) -> None:
        """Fold per-step arrivals into pool load estimates and the predictor."""
        for pool in self.pools.values():
            pool.roll_window(dt)
            self.load_predictor.observe(now, pool.name, pool.load_ema_tps)

    def seed_history(self, now: float, loads_by_pool: Dict[str, float]) -> None:
        """Warm the load predictor with historical per-pool loads."""
        for pool_name, load in loads_by_pool.items():
            if pool_name in self.pools:
                self.load_predictor.observe(now, pool_name, load)
                self.pools[pool_name].load_ema_tps = max(
                    self.pools[pool_name].load_ema_tps, load
                )

    # ------------------------------------------------------------------
    # Scale-out / scale-in
    # ------------------------------------------------------------------
    def _intensity(self, pool_name: str) -> float:
        """Total tokens processed per prompt token for a pool's governing type."""
        return type_intensity(self.pools[pool_name].governing_type)

    def node_capacity(self, pool_name: str) -> float:
        """Max load (prompt TPS) one server can carry for a pool at TP8/max f."""
        governing = self.pools[pool_name].governing_type
        frequencies = self.profile.frequencies(governing, 8)
        if not frequencies:
            return 0.0
        return self.profile.max_load(governing, 8, max(frequencies))

    def _spill_threshold(self, pool_name: str) -> float:
        """Load below which a pool is consolidated into its spill target.

        A pool whose entire predicted load fits comfortably in half of the
        smallest instance (TP2 at maximum frequency) is not worth its own
        resources; its load is redirected to the next larger pool instead
        (the fragmentation-handling rule of Section IV-B).
        """
        governing = self.pools[pool_name].governing_type
        frequencies = self.profile.frequencies(governing, 2)
        if not frequencies:
            return 0.0
        return 0.5 * self.profile.max_load(governing, 2, max(frequencies))

    def scale_epoch(self, now: float) -> Dict[str, int]:
        """Recompute per-pool GPU budgets and scale the cluster.

        The paper sizes pools in whole nodes under a TP8 assumption; at
        the smaller scales this reproduction simulates, whole-node
        granularity would leave most pools badly over- or under-sized,
        so budgets are handed out in GPUs and pools may share servers.
        Returns the new per-pool *server-equivalent* budgets.  When
        ``scale_instances`` is off the static budgets are kept.
        """
        from repro.core.optimizer import minimal_gpu_budget

        budgets: Dict[str, int] = {}
        if not self.scale_instances:
            for pool in self.pools.values():
                budgets[pool.name] = pool.server_budget
            return budgets

        gpus_per_server = self.cluster.server_spec.gpus_per_server
        max_gpus = self.cluster.max_servers * gpus_per_server
        ordered = self.scheme.pools_by_size()
        # Spilled load is accumulated per receiving pool, already converted to
        # the receiver's load units (its governing bucket's prompt tokens).
        carry_by_pool: Dict[str, float] = {name: 0.0 for name in ordered}
        total_gpus = 0
        for pool_name in ordered:
            pool = self.pools[pool_name]
            predicted = self.load_predictor.predict(now, pool_name)
            predicted = max(predicted, pool.epoch_peak_tps, pool.load_ema_tps)
            predicted *= self.capacity_headroom
            pool.predicted_load_tps = predicted + carry_by_pool.get(pool_name, 0.0)
            pool.reset_epoch_peak()

            receiver = self.scheme.next_larger_pool(pool_name)
            is_largest = receiver == pool_name
            if (
                self.fragmentation_handling
                and not is_largest
                and 0.0 < pool.predicted_load_tps < self._spill_threshold(pool_name)
            ):
                # Consolidate: this pool's trickle of load is not worth even
                # the smallest instance; redirect it to the next larger
                # (dominating) pool, converted into that pool's load units.
                pool.spill_fraction = 1.0
                carry_by_pool[receiver] = carry_by_pool.get(receiver, 0.0) + (
                    pool.predicted_load_tps
                    * self.node_capacity(receiver)
                    / max(1e-9, self.node_capacity(pool_name))
                )
                pool.server_budget = 0
                pool.gpu_budget = 0
                budgets[pool_name] = 0
                continue

            pool.spill_fraction = 0.0
            if self.node_granularity:
                capacity = self.node_capacity(pool_name)
                nodes = (
                    math.ceil(pool.predicted_load_tps / capacity) if capacity > 0 else 0
                )
                gpu_budget = nodes * gpus_per_server
            else:
                gpu_budget = minimal_gpu_budget(
                    self.profile, pool.governing_type, pool.predicted_load_tps, max_gpus
                )
            gpu_budget = max(gpu_budget, self.min_servers_per_pool * gpus_per_server)
            pool.gpu_budget = gpu_budget
            pool.server_budget = math.ceil(gpu_budget / gpus_per_server)
            budgets[pool_name] = pool.server_budget
            total_gpus += gpu_budget

        total_servers = math.ceil(total_gpus / gpus_per_server)
        self.cluster.scale_to(total_servers, now)
        self.events.emit(
            now,
            "scale_epoch",
            "cluster_manager",
            budgets=dict(budgets),
            total_gpus=total_gpus,
            total_servers=total_servers,
        )
        return budgets
