"""Pool bookkeeping shared by the controllers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.workload.classification import ClassificationScheme, RequestType


@dataclass
class PoolState:
    """Mutable state of one instance pool.

    A pool serves one or more request-type buckets (usually one); its
    *governing type* — the largest member bucket — determines which SLO
    and which profile rows the controllers use, because the pool must be
    able to serve its most demanding members.
    """

    name: str
    member_types: Tuple[str, ...]
    governing_type: str
    server_budget: int = 0
    gpu_budget: int = 0
    spill_fraction: float = 0.0
    load_ema_tps: float = 0.0
    epoch_peak_tps: float = 0.0
    observed_tokens: float = 0.0
    observed_window_s: float = 0.0
    predicted_load_tps: float = 0.0

    def observe_arrival(self, prompt_tokens: int) -> None:
        """Record arriving prompt tokens (aggregated per step by the framework)."""
        self.observed_tokens += prompt_tokens

    def roll_window(self, dt: float, smoothing_s: float = 60.0) -> None:
        """Fold the accumulated arrivals into the load EMA and the epoch peak."""
        if dt <= 0:
            return
        instantaneous = self.observed_tokens / dt
        alpha = min(1.0, dt / smoothing_s)
        self.load_ema_tps = (1 - alpha) * self.load_ema_tps + alpha * instantaneous
        self.epoch_peak_tps = max(self.epoch_peak_tps, self.load_ema_tps)
        self.observed_tokens = 0.0
        self.observed_window_s += dt

    def reset_epoch_peak(self) -> None:
        """Start a fresh peak window (called at every scale epoch)."""
        self.epoch_peak_tps = self.load_ema_tps


def build_pool_states(scheme: ClassificationScheme) -> Dict[str, PoolState]:
    """Create the pool states for a classification scheme."""
    pools: Dict[str, PoolState] = {}
    for pool_name in scheme.pool_names():
        members = scheme.members(pool_name)
        governing = scheme.heaviest_member(pool_name).name
        pools[pool_name] = PoolState(
            name=pool_name,
            member_types=tuple(members),
            governing_type=governing,
        )
    return pools


def pools_ordered_by_size(scheme: ClassificationScheme) -> List[str]:
    """Pool names from the smallest to the largest request sizes."""
    return scheme.pools_by_size()


def governing_type(scheme: ClassificationScheme, pool_name: str) -> RequestType:
    return scheme.heaviest_member(pool_name)
