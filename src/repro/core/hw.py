"""Shared leaf hardware cost models owned by the core layer.

The controller hierarchy reasons about two hardware costs that the
cluster simulator also charges: the per-change GPU frequency switching
overhead (Section III-C, Figure 3) and the VM warm/cold boot times of
the paper's Table V.  Both layers genuinely need the numbers — the
controllers to decide whether a reconfiguration pays for itself, the
simulator to charge it — so the tables live here, in the foundation
layer, and :mod:`repro.cluster` imports them downward.  The historical
``repro.cluster.frequency`` / ``repro.cluster.vm`` locations re-export
them behind deprecation shims.
"""

from __future__ import annotations

from typing import Dict

#: Measured cost of one frequency change through the standard stack.
DEFAULT_SWITCH_OVERHEAD_S = 0.065
#: Cost with DynamoLLM's resident, privileged management path.
OPTIMIZED_SWITCH_OVERHEAD_S = 0.005

#: Breakdown of the naive instance-creation overheads (seconds), Table V.
COLD_BOOT_BREAKDOWN_S: Dict[str, float] = {
    "create_vm": 90.0,
    "init_distributed_env": 120.0,
    "download_weights": 180.0,
    "setup_engine": 18.0,
    "install_weights_kv": 15.0,
}

#: Breakdown with DynamoLLM's optimisations: weights cached locally,
#: snapshot boot with pre-initialised engine, so only the snapshot
#: restore and weight installation remain.
WARM_BOOT_BREAKDOWN_S: Dict[str, float] = {
    "restore_snapshot": 20.0,
    "install_weights_kv": 15.0,
}


def cold_boot_time_s() -> float:
    """Total naive instance-creation time (about 7 minutes)."""
    return sum(COLD_BOOT_BREAKDOWN_S.values())


def warm_boot_time_s() -> float:
    """Total optimised instance-creation time."""
    return sum(WARM_BOOT_BREAKDOWN_S.values())
