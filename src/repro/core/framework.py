"""The DynamoLLM framework: hierarchy of controllers behind one façade.

``DynamoLLM`` wires a cluster manager, one pool manager per request-type
pool and one instance manager per pool, and drives them at their
respective epochs (scale-out every ~30 minutes, shard-up/down every ~5
minutes, frequency every ~5 seconds in the paper; the defaults here are
scaled down to suit 1-hour simulations).

The same class also implements the evaluated baselines: each knob
(multi-pool separation, instance scaling, shard scaling, frequency
scaling) can be disabled independently, which is exactly how SinglePool,
MultiPool, ScaleInst, ScaleShard and ScaleFreq are defined in Section V.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.cluster_manager import ClusterManager
from repro.core.instance_manager import InstanceManager
from repro.core.interfaces import ClusterLike, InstanceLike
from repro.core.overheads import OverheadModel
from repro.core.pool_manager import PoolManager
from repro.llm.catalog import ModelSpec
from repro.perf.profile import EnergyPerformanceProfile
from repro.sim.events import EventLog
from repro.sim.schedule import PeriodicScheduler
from repro.workload.classification import ClassificationScheme, DEFAULT_SCHEME
from repro.workload.load_predictor import TemplateLoadPredictor
from repro.workload.predictor import OutputLengthPredictor
from repro.workload.request import Request
from repro.workload.slo import SLOPolicy, DEFAULT_SLO_POLICY


@dataclass(frozen=True)
class ControllerKnobs:
    """Which reconfiguration knobs the policy is allowed to use."""

    scale_instances: bool = True
    scale_sharding: bool = True
    scale_frequency: bool = True
    fragmentation_handling: bool = True
    overhead_aware: bool = True
    staggered_reconfiguration: bool = True
    emergency_handling: bool = True


@dataclass(frozen=True)
class ControllerEpochs:
    """Controller periods in seconds of simulated time.

    The paper uses ~30 min / ~5 min / ~5 s; the defaults here shrink the
    upper levels so that one-hour simulations exercise several epochs.
    """

    scale_epoch_s: float = 300.0
    shard_epoch_s: float = 60.0
    frequency_epoch_s: float = 5.0


class _LazyOverloadMap(Mapping[str, bool]):
    """Pool-name -> overload flag, evaluated on demand for one route call.

    ``PoolManager.is_overloaded`` is a pure read over the pool's current
    instances, but it walks every instance in the pool; routing consults
    at most two pools per request, so the old eager dict comprehension
    over *all* pools dominated the per-request routing cost.  Results
    are cached for the lifetime of the map (one ``route`` call), so
    repeated lookups within a call stay consistent.
    """

    __slots__ = ("_managers", "_now", "_cache")

    def __init__(self, managers: Dict[str, PoolManager], now: float) -> None:
        self._managers = managers
        self._now = now
        self._cache: Dict[str, bool] = {}

    def __getitem__(self, name: str) -> bool:
        cached = self._cache.get(name)
        if cached is None:
            manager = self._managers.get(name)
            if manager is None:
                raise KeyError(name)
            cached = manager.is_overloaded(self._now)
            self._cache[name] = cached
        return cached

    def __iter__(self) -> Iterator[str]:
        return iter(self._managers)

    def __len__(self) -> int:
        return len(self._managers)


class DynamoLLM:
    """Energy-management framework for an LLM inference cluster."""

    def __init__(
        self,
        model: ModelSpec,
        cluster: ClusterLike,
        profile: EnergyPerformanceProfile,
        scheme: ClassificationScheme = DEFAULT_SCHEME,
        slo_policy: SLOPolicy = DEFAULT_SLO_POLICY,
        predictor: Optional[OutputLengthPredictor] = None,
        load_predictor: Optional[TemplateLoadPredictor] = None,
        knobs: ControllerKnobs = ControllerKnobs(),
        epochs: ControllerEpochs = ControllerEpochs(),
        static_servers: int = 0,
        expected_load_fractions: Optional[Dict[str, float]] = None,
        default_tensor_parallelism: int = 8,
        name: str = "DynamoLLM",
    ) -> None:
        self.model = model
        self.cluster = cluster
        self.profile = profile
        self.scheme = scheme
        self.slo_policy = slo_policy
        self.knobs = knobs
        self.epochs = epochs
        self.static_servers = static_servers
        self.default_tensor_parallelism = default_tensor_parallelism
        self.name = name
        self.events = EventLog()

        self.overheads = OverheadModel(
            model=model,
            server=cluster.server_spec,
            optimized_frequency_switching=cluster.optimized_frequency_switching,
            optimized_scale_out=cluster.provisioner.proactive,
        )
        static_budgets = None
        if not knobs.scale_instances:
            static_budgets = self._static_budgets(expected_load_fractions)
        self.cluster_manager = ClusterManager(
            scheme=scheme,
            profile=profile,
            cluster=cluster,
            predictor=predictor or OutputLengthPredictor(accuracy=1.0),
            load_predictor=load_predictor or TemplateLoadPredictor(),
            events=self.events,
            scale_instances=knobs.scale_instances,
            fragmentation_handling=knobs.fragmentation_handling,
            static_server_budgets=static_budgets,
            node_granularity=not knobs.scale_sharding,
        )
        self.pool_managers: Dict[str, PoolManager] = {}
        self.instance_managers: Dict[str, InstanceManager] = {}
        for pool_name, pool_state in self.cluster_manager.pools.items():
            pool_manager = PoolManager(
                pool=pool_state,
                profile=profile,
                cluster=cluster,
                overheads=self.overheads,
                events=self.events,
                scale_sharding=knobs.scale_sharding,
                overhead_aware=knobs.overhead_aware,
                staggered=knobs.staggered_reconfiguration,
                shard_epoch_s=epochs.shard_epoch_s,
                default_tensor_parallelism=default_tensor_parallelism,
            )
            self.pool_managers[pool_name] = pool_manager
            self.instance_managers[pool_name] = InstanceManager(
                pool_manager=pool_manager,
                profile=profile,
                slo_policy=slo_policy,
                events=self.events,
                scale_frequency=knobs.scale_frequency,
                emergency_enabled=knobs.emergency_handling,
            )

        self._scheduler = PeriodicScheduler()
        self._scheduler.add("scale", epochs.scale_epoch_s, self._scale_tick, offset=epochs.scale_epoch_s)
        self._scheduler.add("shard", epochs.shard_epoch_s, self._shard_tick, offset=epochs.shard_epoch_s)
        self._scheduler.add(
            "frequency", epochs.frequency_epoch_s, self._frequency_tick, offset=epochs.frequency_epoch_s
        )
        self._routed_requests = 0
        #: Observer hook: called as ``listener(kind, now)`` after every
        #: controller epoch ("scale", "shard" or "frequency").  Set by the
        #: simulation engine to emit ``EpochReconfigured`` events.
        self.epoch_listener: Optional[Callable[[str, float], None]] = None

    # ------------------------------------------------------------------
    # Initial provisioning
    # ------------------------------------------------------------------
    def _static_budgets(
        self, expected_load_fractions: Optional[Dict[str, float]]
    ) -> Dict[str, int]:
        """Split the static server budget across pools by expected load."""
        pool_names = self.scheme.pool_names()
        fractions = expected_load_fractions or {}
        if not fractions:
            fractions = {name: 1.0 / len(pool_names) for name in pool_names}
        total_fraction = sum(fractions.get(name, 0.0) for name in pool_names) or 1.0
        budgets: Dict[str, int] = {}
        remaining = self.static_servers
        for name in pool_names:
            share = fractions.get(name, 0.0) / total_fraction
            servers = max(1, round(self.static_servers * share)) if share > 0 else 0
            budgets[name] = servers
            remaining -= servers
        # Give any remaining budget (positive or negative) to the largest pool.
        largest = self.scheme.pools_by_size()[-1]
        budgets[largest] = max(1, budgets.get(largest, 0) + remaining)
        return budgets

    def setup(self, now: float = 0.0, warm_loads: Optional[Dict[str, float]] = None) -> None:
        """Provision the initial instances.

        ``warm_loads`` maps pool names to expected prompt-token loads and
        plays the role of the historical data the load predictor would
        have in production; scaling policies use it for their first
        scale decision.
        """
        if warm_loads:
            self.cluster_manager.seed_history(now, warm_loads)
        if self.knobs.scale_instances:
            self.cluster_manager.scale_epoch(now)
        else:
            total = sum(p.server_budget for p in self.cluster_manager.pools.values())
            self.cluster.scale_to(max(total, self.static_servers), now)
        self.cluster.collect_provisioned(now + 1e9)  # initial servers boot instantly
        for pool_manager in self.pool_managers.values():
            pool_manager.shard_epoch(now)
        for instance_manager in self.instance_managers.values():
            instance_manager.frequency_epoch(now)

    # ------------------------------------------------------------------
    # Request routing (policy interface)
    # ------------------------------------------------------------------
    def route(self, request: Request, now: float) -> Optional[InstanceLike]:
        """Steer a request to an instance; returns the chosen instance."""
        overloaded = _LazyOverloadMap(self.pool_managers, now)
        pool_name = self.cluster_manager.pool_for(request, overloaded)
        instance = self._select_with_fallback(pool_name, request, now)
        if instance is not None:
            instance.enqueue(request, now)
            self._routed_requests += 1
        return instance

    def _select_with_fallback(
        self, pool_name: str, request: Request, now: float
    ) -> Optional[InstanceLike]:
        visited = set()
        current = pool_name
        while current not in visited:
            visited.add(current)
            manager = self.pool_managers.get(current)
            if manager is not None:
                instance = manager.select_instance(request, now)
                if instance is not None:
                    return instance
            nxt = self.scheme.next_larger_pool(current)
            if nxt == current:
                break
            current = nxt
        # Last resort: any instance in the cluster.
        instances: List[InstanceLike] = list(self.cluster.instances.values())
        if not instances:
            return None
        return min(instances, key=lambda i: (i.queue_length, i.load_estimate_tps))

    # ------------------------------------------------------------------
    # Periodic control (policy interface)
    # ------------------------------------------------------------------
    def on_step(self, now: float, dt: float) -> None:
        """Advance controller state by one simulation step."""
        self.cluster_manager.roll_load_window(now, dt)
        self._scheduler.tick(now)

    def _notify_epoch(self, kind: str, now: float) -> None:
        if self.epoch_listener is not None:
            self.epoch_listener(kind, now)

    def _scale_tick(self, now: float) -> None:
        self.cluster_manager.scale_epoch(now)
        self._notify_epoch("scale", now)

    def _shard_tick(self, now: float) -> None:
        # Reactive scale-out: when a pool is saturated (e.g. after a load
        # mis-prediction), do not wait for the next scale epoch — re-run the
        # cluster-level sizing immediately (Section IV-D emergency handling).
        if self.knobs.scale_instances and any(
            manager.is_overloaded(now) for manager in self.pool_managers.values()
        ):
            self.cluster_manager.scale_epoch(now)
        for pool_manager in self.pool_managers.values():
            pool_manager.shard_epoch(now)
        self._notify_epoch("shard", now)

    def _frequency_tick(self, now: float) -> None:
        for instance_manager in self.instance_managers.values():
            instance_manager.frequency_epoch(now)
        self._notify_epoch("frequency", now)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def routed_requests(self) -> int:
        return self._routed_requests

    def pool_summary(self) -> Dict[str, Dict[str, float]]:
        """Current per-pool budgets, loads and instance counts."""
        summary: Dict[str, Dict[str, float]] = {}
        for name, state in self.cluster_manager.pools.items():
            manager = self.pool_managers[name]
            summary[name] = {
                "servers": state.server_budget,
                "gpus": state.gpu_budget,
                "load_tps": state.load_ema_tps,
                "instances": len(manager.instances()),
            }
        return summary

    def total_squashed(self) -> int:
        return sum(m.squashed_count for m in self.instance_managers.values())
