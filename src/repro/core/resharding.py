"""Re-sharding planner: minimal weight movement between TP layouts.

Changing an instance's tensor parallelism requires re-distributing the
model weights across GPUs.  DynamoLLM minimises the transferred data by
(1) solving a maximum-weight bipartite matching between the GPUs of the
current layout and the logical roles of the target layout, so that as
many weight shards as possible stay where they already are, and (2)
moving the remaining shards over direct NVLink links in parallel
(Section IV-C, Figure 5, Table VI).

The model is treated as eight equal shards (eighths) W0..W7; a TP-k GPU
role holds ``8/k`` consecutive eighths.  The re-sharding time is the
maximum number of eighths moved over any single (source, destination)
GPU pair, in units of ``T`` — the time to move one eighth over NVLink —
because transfers between distinct GPU pairs proceed in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.llm.catalog import ModelSpec
from repro.llm.gpu import GPUSpec, ServerSpec, DGX_H100

#: Number of elementary weight shards the model is split into.
N_SHARDS = 8


@dataclass(frozen=True)
class ShardLayout:
    """A server-level sharding layout: the TP degree of each instance.

    For example ``(4, 4)`` is two TP4 instances (the paper's "2TP4"),
    ``(2,)`` is a single TP2 instance with six idle GPUs, ``(2, 4)`` is
    the paper's "TP2+TP4".
    """

    instance_tps: Tuple[int, ...]

    def __post_init__(self) -> None:
        if sum(self.instance_tps) > N_SHARDS:
            raise ValueError(
                f"layout {self.instance_tps} needs more than {N_SHARDS} GPUs"
            )
        for tp in self.instance_tps:
            if tp not in (1, 2, 4, 8):
                raise ValueError(f"unsupported tensor parallelism {tp}")

    @property
    def name(self) -> str:
        counts: Dict[int, int] = {}
        for tp in self.instance_tps:
            counts[tp] = counts.get(tp, 0) + 1
        parts = []
        for tp in sorted(counts, reverse=True):
            prefix = f"{counts[tp]}" if counts[tp] > 1 else ""
            parts.append(f"{prefix}TP{tp}")
        return "+".join(parts) if parts else "idle"

    @property
    def gpus_used(self) -> int:
        return sum(self.instance_tps)

    def gpu_shards(self) -> List[FrozenSet[int]]:
        """Shard set held by each of the 8 physical GPU slots.

        Instances are laid out left to right; GPUs not backing any
        instance hold nothing.
        """
        shards: List[FrozenSet[int]] = []
        for tp in self.instance_tps:
            per_gpu = N_SHARDS // tp
            for rank in range(tp):
                start = rank * per_gpu
                shards.append(frozenset(range(start, start + per_gpu)))
        while len(shards) < N_SHARDS:
            shards.append(frozenset())
        return shards


#: The layouts of the paper's Table VI overhead matrix.
CANONICAL_LAYOUTS: Dict[str, ShardLayout] = {
    "TP2": ShardLayout((2,)),
    "4TP2": ShardLayout((2, 2, 2, 2)),
    "TP4": ShardLayout((4,)),
    "TP2+TP4": ShardLayout((2, 4)),
    "2TP4": ShardLayout((4, 4)),
    "TP8": ShardLayout((8,)),
}


@dataclass(frozen=True)
class ReshardPlan:
    """Output of the re-sharding planner."""

    source: ShardLayout
    destination: ShardLayout
    #: (source GPU slot, destination GPU slot, shard ids) transfers.
    transfers: Tuple[Tuple[int, int, FrozenSet[int]], ...]
    #: Re-sharding time in units of T (time to move one eighth).
    time_units: int
    #: Total eighths moved (proportional to bytes over NVLink).
    shards_moved: int

    def transfer_time_s(self, model: ModelSpec, gpu: GPUSpec = DGX_H100.gpu) -> float:
        """Wall-clock transfer time for a concrete model and NVLink speed."""
        return self.time_units * shard_transfer_unit_s(model, gpu)

    def bytes_moved(self, model: ModelSpec) -> float:
        return self.shards_moved * model.weight_bytes / N_SHARDS


def shard_transfer_unit_s(model: ModelSpec, gpu: GPUSpec = DGX_H100.gpu) -> float:
    """T: the time to move one eighth of the model over NVLink."""
    return (model.weight_bytes / N_SHARDS) / (gpu.nvlink_bandwidth_gbps * 1e9)


def plan_reshard(source: ShardLayout, destination: ShardLayout) -> ReshardPlan:
    """Compute the minimal-movement transfer plan between two layouts.

    The physical GPUs keep their identity; the planner decides which
    physical GPU plays which destination role so that the retained
    (non-moved) weights are maximised, then schedules the missing shards
    from GPUs that already hold them.
    """
    src_shards = source.gpu_shards()
    dst_roles = destination.gpu_shards()

    # Maximum-weight assignment of destination roles to physical GPUs.
    overlap = np.zeros((N_SHARDS, N_SHARDS), dtype=float)
    for gpu_index in range(N_SHARDS):
        for role_index in range(N_SHARDS):
            overlap[gpu_index, role_index] = len(
                src_shards[gpu_index] & dst_roles[role_index]
            )
            # Small preference for keeping roles on their original slots to
            # make plans deterministic when overlaps tie.
            if gpu_index == role_index:
                overlap[gpu_index, role_index] += 1e-3
    row, col = linear_sum_assignment(-overlap)
    role_of_gpu = {int(r): int(c) for r, c in zip(row, col)}

    # Which shards each physical GPU still needs.
    transfers: List[Tuple[int, int, FrozenSet[int]]] = []
    pair_load: Dict[Tuple[int, int], int] = {}
    shards_moved = 0
    for gpu_index in range(N_SHARDS):
        role = role_of_gpu[gpu_index]
        needed = dst_roles[role] - src_shards[gpu_index]
        if not needed:
            continue
        # Fetch each missing shard from the source GPU holding it, spreading
        # load over multiple holders where possible.
        assignments: Dict[int, List[int]] = {}
        for shard in sorted(needed):
            holders = [
                other
                for other in range(N_SHARDS)
                if shard in src_shards[other] and other != gpu_index
            ]
            if not holders:
                raise ValueError(
                    f"shard {shard} is not present anywhere in the source layout"
                )
            holder = min(
                holders, key=lambda h: pair_load.get((h, gpu_index), 0)
            )
            assignments.setdefault(holder, []).append(shard)
            pair_load[(holder, gpu_index)] = pair_load.get((holder, gpu_index), 0) + 1
            shards_moved += 1
        for holder, shard_list in assignments.items():
            transfers.append((holder, gpu_index, frozenset(shard_list)))

    time_units = max(pair_load.values()) if pair_load else 0
    return ReshardPlan(
        source=source,
        destination=destination,
        transfers=tuple(transfers),
        time_units=time_units,
        shards_moved=shards_moved,
    )


def reshard_time_units(source: ShardLayout, destination: ShardLayout) -> int:
    """Re-sharding time between two layouts in units of T."""
    return plan_reshard(source, destination).time_units


def overhead_matrix(
    layouts: Sequence[str] = ("TP2", "4TP2", "TP4", "TP2+TP4", "2TP4", "TP8"),
) -> Dict[str, Dict[str, int]]:
    """Reproduce the paper's Table VI: time units for every layout pair."""
    matrix: Dict[str, Dict[str, int]] = {}
    for src_name in layouts:
        matrix[src_name] = {}
        for dst_name in layouts:
            matrix[src_name][dst_name] = reshard_time_units(
                CANONICAL_LAYOUTS[src_name], CANONICAL_LAYOUTS[dst_name]
            )
    return matrix


def requires_downtime(
    source_tp: int,
    destination_tp: int,
    model: ModelSpec,
    server: ServerSpec = DGX_H100,
) -> bool:
    """Whether old and new engines cannot coexist in GPU memory.

    When the per-GPU weight shard grows (scaling to a smaller TP), the
    GPUs that receive extra weights must hold both the old and the new
    shard during the hand-over.  If that exceeds the GPU memory, the old
    instance has to be shut down first, causing downtime (Section IV-C).
    """
    if destination_tp >= source_tp:
        return False
    old_shard_gb = model.weight_gb / source_tp
    new_shard_gb = model.weight_gb / destination_tp
    headroom_gb = server.gpu.memory_gb * 0.95
    return old_shard_gb + new_shard_gb > headroom_gb
