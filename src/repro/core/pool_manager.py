"""Pool manager: instance selection and shard-up/down (Section IV-B/C).

Each pool manager owns the instances serving one request-type pool.  At
every shard epoch it re-solves the restricted energy problem (all
instances at the highest frequency, single TP degree, fair-share load)
for its GPU budget and current load, and — if the expected saving
outweighs the re-sharding overheads — reconfigures its instances using a
staggered schedule so part of the pool keeps serving throughout.

It also routes requests within the pool: among the instances that can
accept more work it picks the one whose projected energy increase is
smallest (in practice the least-loaded SLO-compliant instance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.interfaces import ClusterLike, InstanceLike
from repro.core.optimizer import ShardingPlan, plan_sharding
from repro.core.overheads import OverheadModel
from repro.core.pools import PoolState
from repro.perf.profile import EnergyPerformanceProfile, ProfileEntry
from repro.sim.events import EventLog
from repro.workload.request import Request


@dataclass
class PoolManager:
    """Controller for one instance pool."""

    pool: PoolState
    profile: EnergyPerformanceProfile
    cluster: ClusterLike
    overheads: OverheadModel
    events: EventLog = field(default_factory=EventLog)
    scale_sharding: bool = True
    overhead_aware: bool = True
    staggered: bool = True
    shard_epoch_s: float = 300.0
    default_tensor_parallelism: int = 8
    #: Plans are sized for ``headroom x`` the observed load so bursts between
    #: shard epochs stay within SLO.
    capacity_headroom: float = 1.3
    _last_plan: Optional[ShardingPlan] = field(default=None, init=False)
    #: Memoised (tp, frequency) -> profile entry (or None when the profile
    #: has no such configuration).  Routing consults the profile for every
    #: candidate instance of every request; the profile is immutable once
    #: the managers exist, so the lookups are cached here.
    _entry_cache: Dict[tuple, Optional[ProfileEntry]] = field(
        default_factory=dict, init=False, repr=False
    )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.pool.name

    def instances(self) -> List[InstanceLike]:
        return list(self.cluster.instances_in_pool(self.pool.name))

    def gpus_in_use(self) -> int:
        return sum(instance.gpu_count for instance in self.instances())

    def is_overloaded(self, now: float) -> bool:
        """Whether every instance in the pool is saturated or offline."""
        # instances_in_pool already returns a fresh list; skip the extra
        # defensive copy instances() makes — this runs per routed request.
        instances = self.cluster.instances_in_pool(self.pool.name)
        if not instances:
            return True
        for instance in instances:
            if instance.is_offline(now):
                continue
            capacity = self._instance_capacity(instance)
            if instance.load_estimate_tps < capacity * 0.9 and instance.queue_length < 32:
                return False
        return True

    def _profile_entry(self, tp: int, frequency_mhz: int) -> Optional[ProfileEntry]:
        key = (tp, frequency_mhz)
        cache = self._entry_cache
        if key in cache:
            return cache[key]
        try:
            entry: Optional[ProfileEntry] = self.profile.entry(
                self.pool.governing_type, tp, frequency_mhz
            )
        except KeyError:
            entry = None
        cache[key] = entry
        return entry

    def _instance_capacity(self, instance: InstanceLike) -> float:
        entry = self._profile_entry(
            instance.tensor_parallelism, instance.frequency.current_frequency_mhz
        )
        return entry.max_load_slo if entry is not None else float("inf")

    # ------------------------------------------------------------------
    # Request routing within the pool
    # ------------------------------------------------------------------
    def select_instance(self, request: Request, now: float) -> Optional[InstanceLike]:
        """Pick the instance that minimises the energy of adding the request.

        Following Section IV-D, the manager estimates the energy of every
        instance after hypothetically adding the request (using the
        profile) and picks the cheapest one that stays inside its
        SLO-derived throughput limit; if none qualifies, the least loaded
        online instance is used.
        """
        candidates = [
            i
            for i in self.cluster.instances_in_pool(self.pool.name)
            if not i.is_offline(now) and i.accepting
        ]
        if not candidates:
            # No live instance in this pool (e.g. its server is still booting):
            # let the cluster manager fall through to the next larger pool
            # rather than parking requests behind an offline instance.
            return None
        best: Optional[InstanceLike] = None
        best_cost = float("inf")
        added_load = request.input_tokens / max(1.0, self.shard_epoch_s) * 30.0
        for instance in candidates:
            projected = instance.load_estimate_tps + added_load
            entry = self._profile_entry(
                instance.tensor_parallelism,
                instance.frequency.current_frequency_mhz,
            )
            if entry is None:
                # No profiled configuration: capacity is unbounded and the
                # projected load itself stands in for the energy cost
                # (matching the historical KeyError fallbacks).
                cost = projected
            else:
                if projected > entry.max_load_slo * 0.9:
                    continue
                cost = entry.power_at(projected)
            # Penalise queue build-up so work spreads when power ties.
            cost += instance.queue_length * 1.0
            if cost < best_cost:
                best_cost = cost
                best = instance
        if best is None:
            best = min(candidates, key=lambda i: (i.load_estimate_tps, i.queue_length))
        return best

    # ------------------------------------------------------------------
    # Shard-up / shard-down epoch
    # ------------------------------------------------------------------
    def desired_plan(self, now: float) -> ShardingPlan:
        """The sharding the pool should be running for its current load."""
        load = max(
            self.pool.load_ema_tps * self.capacity_headroom,
            self.pool.epoch_peak_tps * self.capacity_headroom,
            self.pool.predicted_load_tps,
        )
        gpu_budget = max(self.pool.gpu_budget, 0)
        if not self.scale_sharding:
            # Fixed sharding: fill the whole budget with the default TP degree
            # at the highest frequency (the state-of-practice behaviour).
            return self._fill_budget_plan(gpu_budget, load)
        return plan_sharding(
            self.profile, self.pool.governing_type, gpu_budget, load
        )

    def _fill_budget_plan(self, gpu_budget: int, load: float) -> ShardingPlan:
        """Fill the GPU budget with default-TP instances at max frequency."""
        from repro.core.optimizer import InstanceAllocation

        tp = self.default_tensor_parallelism
        count = gpu_budget // tp
        if count <= 0:
            return ShardingPlan(
                allocations=(),
                expected_power_watts=float("inf"),
                feasible=False,
                request_type=self.pool.governing_type,
            )
        frequencies = self.profile.frequencies(self.pool.governing_type, tp)
        frequency = max(frequencies) if frequencies else 1980
        per_instance_load = load / count
        try:
            power = count * self.profile.power(
                self.pool.governing_type, tp, frequency, per_instance_load
            )
        except KeyError:
            power = float("inf")
        return ShardingPlan(
            allocations=(
                InstanceAllocation(
                    tensor_parallelism=tp,
                    count=count,
                    frequency_mhz=frequency,
                    per_instance_load=per_instance_load,
                ),
            ),
            expected_power_watts=power,
            feasible=True,
            request_type=self.pool.governing_type,
        )

    def shard_epoch(self, now: float) -> Dict[str, int]:
        """Reconcile the pool's instances with the desired sharding plan.

        Returns a summary of the actions taken (created / removed /
        resharded instance counts).
        """
        summary = {"created": 0, "removed": 0, "resharded": 0}
        plan = self.desired_plan(now)
        if not plan.feasible:
            # Cannot build a compliant plan (budget too small); make sure at
            # least one instance exists so requests are not dropped.
            if not self.instances() and self.pool.gpu_budget >= 8:
                self._create_instance(8, now)
                summary["created"] += 1
            return summary
        self._last_plan = plan

        desired_configs = plan.instance_configs()
        desired_tp_counts: Dict[int, int] = {}
        for tp, _freq in desired_configs:
            desired_tp_counts[tp] = desired_tp_counts.get(tp, 0) + 1

        current = sorted(self.instances(), key=lambda i: i.instance_id)
        current_tp_counts: Dict[int, int] = {}
        for instance in current:
            current_tp_counts[instance.tensor_parallelism] = (
                current_tp_counts.get(instance.tensor_parallelism, 0) + 1
            )

        if desired_tp_counts == current_tp_counts:
            return summary

        # Overhead awareness: skip the reconfiguration when the expected
        # power saving over the epoch does not cover the transition cost.
        # The check only applies to optional (energy-motivated) re-shards;
        # capacity changes forced by a new GPU budget always go through.
        if (
            self.overhead_aware
            and current
            and plan.total_gpus == self.gpus_in_use()
        ):
            current_power = self._estimate_current_power()
            saving = current_power - plan.expected_power_watts
            source_tp = current[0].tensor_parallelism
            target_tp = plan.allocations[0].tensor_parallelism if plan.allocations else source_tp
            if not self.overheads.reshard_is_worth_it(
                source_tp, target_tp, saving, self.shard_epoch_s
            ):
                return summary

        summary.update(self._apply_plan(plan, now))
        self.events.emit(
            now,
            "reshard",
            f"pool:{self.pool.name}",
            plan={tp: count for tp, count in desired_tp_counts.items()},
            **summary,
        )
        return summary

    def _estimate_current_power(self) -> float:
        total = 0.0
        for instance in self.instances():
            try:
                total += self.profile.power(
                    self.pool.governing_type,
                    instance.tensor_parallelism,
                    instance.frequency.current_frequency_mhz,
                    instance.load_estimate_tps,
                )
            except KeyError:
                total += 0.0
        return total

    def _apply_plan(self, plan: ShardingPlan, now: float) -> Dict[str, int]:
        """Create / reshard / remove instances to match the plan."""
        created = removed = resharded = 0
        desired = plan.instance_configs()
        current = sorted(
            self.instances(), key=lambda i: i.load_estimate_tps
        )

        # Limit how many existing instances are touched at once (staggered
        # reconfiguration keeps part of the pool serving).
        max_touch = len(current) if not self.staggered else max(1, (len(current) + 1) // 2)

        # Step 1: reshard existing instances towards the desired TPs.
        desired_tps = [tp for tp, _f in desired]
        reusable = list(current)
        matched: List[InstanceLike] = []
        for tp in list(desired_tps):
            for instance in reusable:
                if instance.tensor_parallelism == tp:
                    reusable.remove(instance)
                    matched.append(instance)
                    desired_tps.remove(tp)
                    break
        touched = 0
        for tp in list(desired_tps):
            if not reusable or touched >= max_touch:
                break
            instance = reusable.pop(0)
            if self._reshard_instance(instance, tp, now):
                resharded += 1
                touched += 1
                desired_tps.remove(tp)

        # Step 2: create instances for still-missing desired slots.
        for tp in desired_tps:
            if self._create_instance(tp, now):
                created += 1

        # Step 3: drain and remove leftover instances.
        for instance in reusable:
            self._remove_instance(instance, now)
            removed += 1

        # Step 4: align frequencies with the plan (the instance manager will
        # fine-tune them at its own epoch).
        frequency_by_tp = {a.tensor_parallelism: a.frequency_mhz for a in plan.allocations}
        for instance in self.instances():
            target = frequency_by_tp.get(instance.tensor_parallelism)
            if target is not None and self.scale_sharding:
                instance.set_frequency(target, now)

        return {"created": created, "removed": removed, "resharded": resharded}

    def _create_instance(self, tp: int, now: float) -> Optional[InstanceLike]:
        instance = self.cluster.create_instance(
            tensor_parallelism=tp,
            pool=self.pool.name,
            request_type=self.pool.governing_type,
        )
        return instance

    def _remove_instance(self, instance: InstanceLike, now: float) -> None:
        leftovers = self.cluster.remove_instance(instance.instance_id)
        if leftovers:
            target = self.select_instance(leftovers[0].request, now)
            if target is not None:
                target.adopt(leftovers, now)

    def _reshard_instance(self, instance: InstanceLike, new_tp: int, now: float) -> bool:
        transfer = self.overheads.reshard_transfer_time_s(
            instance.tensor_parallelism, new_tp
        )
        downtime = self.overheads.reshard_requires_downtime(
            instance.tensor_parallelism, new_tp
        )
        return self.cluster.reshard_instance(
            instance.instance_id,
            new_tp,
            now,
            transfer_time_s=transfer,
            sync_time_s=self.overheads.engine_sync_s,
            requires_downtime=downtime,
        )
