"""Energy-optimal configuration selection (Equation 1 of the paper).

The full problem picks, for each tensor parallelism, how many instances
to run, at which frequency, and how much load to assign, so that total
energy is minimal while the GPU budget, the total load, and the SLOs are
respected.  The paper solves it with a MILP solver (PuLP); because the
decision space here is small and discrete, :func:`plan_global` solves it
exactly by enumeration.  :func:`plan_sharding` is the restricted
per-pool sub-problem the hierarchical pool manager solves at every
shard epoch: all instances at the maximum frequency, a single TP degree
per pool, fair-share load (Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.perf.config import TENSOR_PARALLELISMS
from repro.perf.profile import EnergyPerformanceProfile


@dataclass(frozen=True)
class InstanceAllocation:
    """A homogeneous group of instances within a plan."""

    tensor_parallelism: int
    count: int
    frequency_mhz: int
    per_instance_load: float

    @property
    def gpus(self) -> int:
        return self.tensor_parallelism * self.count

    @property
    def total_load(self) -> float:
        return self.per_instance_load * self.count


@dataclass(frozen=True)
class ShardingPlan:
    """An energy-optimised allocation for one pool (or the whole cluster)."""

    allocations: Tuple[InstanceAllocation, ...]
    expected_power_watts: float
    feasible: bool
    request_type: str

    @property
    def total_gpus(self) -> int:
        return sum(allocation.gpus for allocation in self.allocations)

    @property
    def total_instances(self) -> int:
        return sum(allocation.count for allocation in self.allocations)

    @property
    def total_load(self) -> float:
        return sum(allocation.total_load for allocation in self.allocations)

    def instance_configs(self) -> List[Tuple[int, int]]:
        """Flat list of (tp, frequency) pairs, one per instance."""
        configs: List[Tuple[int, int]] = []
        for allocation in self.allocations:
            configs.extend(
                [(allocation.tensor_parallelism, allocation.frequency_mhz)]
                * allocation.count
            )
        return configs


def _infeasible(request_type: str) -> ShardingPlan:
    return ShardingPlan(
        allocations=(), expected_power_watts=float("inf"), feasible=False, request_type=request_type
    )


def plan_sharding(
    profile: EnergyPerformanceProfile,
    request_type: str,
    total_gpus: int,
    load_tps: float,
    frequency_mhz: Optional[int] = None,
    tensor_parallelisms: Sequence[int] = TENSOR_PARALLELISMS,
    minimize_instances: bool = True,
) -> ShardingPlan:
    """Pick the best single-TP sharding of ``total_gpus`` for a pool.

    This is the pool manager's sub-problem: the GPU budget is fixed by
    the cluster manager and all instances are assumed to run at the
    highest frequency (``frequency_mhz=None`` selects the highest
    profiled frequency).  Returns an infeasible plan when no sharding
    can carry the load within SLO.
    """
    if total_gpus <= 0:
        return _infeasible(request_type)
    best: Optional[ShardingPlan] = None
    for tp in tensor_parallelisms:
        frequencies = profile.frequencies(request_type, tp)
        if not frequencies:
            continue
        frequency = frequency_mhz if frequency_mhz is not None else max(frequencies)
        if frequency not in frequencies:
            continue
        max_instances = total_gpus // tp
        if max_instances <= 0:
            continue
        per_instance_capacity = profile.max_load(request_type, tp, frequency)
        if per_instance_capacity <= 0:
            continue
        candidate_counts: Iterable[int]
        if minimize_instances:
            import math

            needed = max(1, math.ceil(load_tps / per_instance_capacity)) if load_tps > 0 else 1
            candidate_counts = range(needed, max_instances + 1)
        else:
            candidate_counts = range(1, max_instances + 1)
        for count in candidate_counts:
            per_instance_load = load_tps / count if count else 0.0
            if per_instance_load > per_instance_capacity:
                continue
            power = count * profile.power(request_type, tp, frequency, per_instance_load)
            plan = ShardingPlan(
                allocations=(
                    InstanceAllocation(
                        tensor_parallelism=tp,
                        count=count,
                        frequency_mhz=frequency,
                        per_instance_load=per_instance_load,
                    ),
                ),
                expected_power_watts=power,
                feasible=True,
                request_type=request_type,
            )
            if best is None or power < best.expected_power_watts:
                best = plan
            if minimize_instances:
                # Adding more instances of the same TP only adds idle power,
                # so the first feasible count is optimal for this TP.
                break
    return best if best is not None else _infeasible(request_type)


def minimal_gpu_budget(
    profile: EnergyPerformanceProfile,
    request_type: str,
    load_tps: float,
    max_gpus: int,
    tensor_parallelisms: Sequence[int] = TENSOR_PARALLELISMS,
) -> int:
    """Smallest GPU budget for which an SLO-compliant sharding exists.

    Used by the cluster manager to hand out GPU-granular budgets: the
    budget is grown in steps of two GPUs (the smallest TP degree) until
    :func:`plan_sharding` finds a feasible plan at the highest frequency.
    Returns 0 when the load is zero and ``max_gpus`` when even the full
    budget is insufficient (the pool is then simply saturated).
    """
    if load_tps <= 0:
        return 0
    budget = min(tensor_parallelisms)
    while budget <= max_gpus:
        plan = plan_sharding(
            profile, request_type, budget, load_tps, tensor_parallelisms=tensor_parallelisms
        )
        if plan.feasible:
            return plan.total_gpus
        budget += min(tensor_parallelisms)
    return max_gpus


def plan_global(
    profile: EnergyPerformanceProfile,
    request_type: str,
    total_gpus: int,
    load_tps: float,
    tensor_parallelisms: Sequence[int] = TENSOR_PARALLELISMS,
    frequencies: Optional[Sequence[int]] = None,
    max_instances_per_tp: int = 16,
) -> ShardingPlan:
    """Exact solution of Equation 1 for one request type.

    Enumerates mixed-TP allocations (N_TP2, N_TP4, N_TP8), splits the
    load across instance groups proportionally to their capacity, and
    picks the lowest-power SLO-compliant frequency per group.  This is
    the global optimum the hierarchical heuristic approximates; it is
    used for ablations and for validating the heuristic.
    """
    if total_gpus <= 0:
        return _infeasible(request_type)
    tps = [tp for tp in tensor_parallelisms if profile.frequencies(request_type, tp)]
    if not tps:
        return _infeasible(request_type)
    if frequencies is None:
        frequency_options = {
            tp: profile.frequencies(request_type, tp) for tp in tps
        }
    else:
        frequency_options = {tp: list(frequencies) for tp in tps}

    max_frequency = {tp: max(frequency_options[tp]) for tp in tps}
    capacity_at_max = {
        tp: profile.max_load(request_type, tp, max_frequency[tp]) for tp in tps
    }

    best: Optional[ShardingPlan] = None

    def iterate_counts(index: int, remaining_gpus: int, counts: List[int]) -> None:
        nonlocal best
        if index == len(tps):
            if all(count == 0 for count in counts):
                return
            evaluate(counts)
            return
        tp = tps[index]
        limit = min(max_instances_per_tp, remaining_gpus // tp)
        for count in range(0, limit + 1):
            counts.append(count)
            iterate_counts(index + 1, remaining_gpus - count * tp, counts)
            counts.pop()

    def evaluate(counts: Sequence[int]) -> None:
        nonlocal best
        total_capacity = sum(
            counts[i] * capacity_at_max[tps[i]] for i in range(len(tps))
        )
        if total_capacity <= 0 or (load_tps > 0 and total_capacity < load_tps):
            return
        allocations: List[InstanceAllocation] = []
        total_power = 0.0
        for i, tp in enumerate(tps):
            count = counts[i]
            if count == 0:
                continue
            group_capacity = count * capacity_at_max[tp]
            group_load = load_tps * group_capacity / total_capacity if load_tps > 0 else 0.0
            per_instance_load = group_load / count
            frequency = profile.best_frequency(
                request_type, tp, per_instance_load, frequency_options[tp]
            )
            if frequency is None:
                return
            total_power += count * profile.power(
                request_type, tp, frequency, per_instance_load
            )
            allocations.append(
                InstanceAllocation(
                    tensor_parallelism=tp,
                    count=count,
                    frequency_mhz=frequency,
                    per_instance_load=per_instance_load,
                )
            )
        plan = ShardingPlan(
            allocations=tuple(allocations),
            expected_power_watts=total_power,
            feasible=True,
            request_type=request_type,
        )
        if best is None or total_power < best.expected_power_watts:
            best = plan

    iterate_counts(0, total_gpus, [])
    return best if best is not None else _infeasible(request_type)
