"""Reconfiguration overhead accounting (the Overhead Table of Section IV-B).

DynamoLLM stores the cost of every transition — scale-out/in,
shard-up/down, frequency change — and the controllers consult it before
reconfiguring: a change only happens when the expected energy saving
over the next epoch outweighs the energy and downtime cost of making
the change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.hw import (
    DEFAULT_SWITCH_OVERHEAD_S,
    OPTIMIZED_SWITCH_OVERHEAD_S,
    cold_boot_time_s,
    warm_boot_time_s,
)
from repro.core.resharding import (
    requires_downtime,
    reshard_time_units,
    shard_transfer_unit_s,
    ShardLayout,
)
from repro.llm.catalog import ModelSpec
from repro.llm.gpu import ServerSpec, DGX_H100
from repro.perf.power_model import PowerModel


#: Engine synchronisation time after weights land on the new GPU set;
#: state-of-the-art engines take a few hundred ms to a few seconds.
ENGINE_SYNC_S = 1.5


@dataclass
class OverheadModel:
    """Costs of the three reconfiguration operations for one model."""

    model: ModelSpec
    server: ServerSpec = DGX_H100
    optimized_frequency_switching: bool = True
    optimized_scale_out: bool = True
    engine_sync_s: float = ENGINE_SYNC_S
    _power: PowerModel = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._power = PowerModel(self.server)

    # ------------------------------------------------------------------
    # Scale-out / scale-in
    # ------------------------------------------------------------------
    def scale_out_time_s(self) -> float:
        """Time before a newly requested server can serve requests."""
        return warm_boot_time_s() if self.optimized_scale_out else cold_boot_time_s()

    # ------------------------------------------------------------------
    # Shard-up / shard-down
    # ------------------------------------------------------------------
    def reshard_transfer_time_s(self, source_tp: int, destination_tp: int) -> float:
        """NVLink transfer time for re-sharding a single instance."""
        units = reshard_time_units(
            ShardLayout((source_tp,)), ShardLayout((destination_tp,))
        )
        return units * shard_transfer_unit_s(self.model, self.server.gpu)

    def reshard_requires_downtime(self, source_tp: int, destination_tp: int) -> bool:
        return requires_downtime(source_tp, destination_tp, self.model, self.server)

    def reshard_total_time_s(self, source_tp: int, destination_tp: int) -> float:
        """Transfer plus engine synchronisation."""
        return self.reshard_transfer_time_s(source_tp, destination_tp) + self.engine_sync_s

    def reshard_energy_wh(self, source_tp: int, destination_tp: int) -> float:
        """Energy burned by the instance while reconfiguring.

        During the transfer and synchronisation the involved GPUs are
        powered (moving weights, re-initialising) but serve little or no
        load; we charge them at a moderate activity level.
        """
        duration = self.reshard_total_time_s(source_tp, destination_tp)
        gpus = max(source_tp, destination_tp)
        power = self._power.instance_power(
            gpus, self.server.gpu.max_frequency_mhz, activity=0.3
        )
        return power * duration / 3600.0

    # ------------------------------------------------------------------
    # Frequency scaling
    # ------------------------------------------------------------------
    def frequency_switch_time_s(self) -> float:
        return (
            OPTIMIZED_SWITCH_OVERHEAD_S
            if self.optimized_frequency_switching
            else DEFAULT_SWITCH_OVERHEAD_S
        )

    # ------------------------------------------------------------------
    # Decision helper
    # ------------------------------------------------------------------
    def reshard_is_worth_it(
        self,
        source_tp: int,
        destination_tp: int,
        power_saving_watts: float,
        horizon_s: float,
    ) -> bool:
        """Whether a re-shard pays for itself within the next epoch.

        ``power_saving_watts`` is the expected steady-state power
        reduction of the new configuration; ``horizon_s`` is the time the
        new configuration is expected to stay in place (the pool-manager
        epoch).
        """
        if power_saving_watts <= 0:
            return False
        saving_wh = power_saving_watts * horizon_s / 3600.0
        cost_wh = self.reshard_energy_wh(source_tp, destination_tp)
        return saving_wh > cost_wh

    def as_table(self) -> Dict[str, float]:
        """Human-readable summary of the main overheads (seconds)."""
        return {
            "scale_out_s": self.scale_out_time_s(),
            "engine_sync_s": self.engine_sync_s,
            "frequency_switch_s": self.frequency_switch_time_s(),
            "shard_unit_T_s": shard_transfer_unit_s(self.model, self.server.gpu),
        }
