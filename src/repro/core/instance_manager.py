"""Instance manager: frequency scaling and emergency handling.

The lowest level of the controller hierarchy runs every few seconds.
For each instance it filters out the GPU frequencies that would violate
the SLO at the instance's current load and picks the one that minimises
energy (Section IV-B, "Scale-up/down").

It also reacts to mis-predictions (Section IV-D): when an instance's
queue builds up it (1) reorders the queue earliest-deadline-first,
(2) ramps the GPU frequency to the maximum, (3) re-steers waiting
requests to a sibling instance, and (4) as a last resort squashes
requests that waited beyond a threshold so the frontend can retry them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.interfaces import InstanceLike
from repro.core.pool_manager import PoolManager
from repro.perf.profile import EnergyPerformanceProfile
from repro.sim.events import EventLog
from repro.workload.classification import classify_request
from repro.workload.request import Request
from repro.workload.slo import SLOPolicy, DEFAULT_SLO_POLICY


@dataclass
class InstanceManager:
    """Frequency tuning and emergency handling for one pool's instances."""

    pool_manager: PoolManager
    profile: EnergyPerformanceProfile
    slo_policy: SLOPolicy = DEFAULT_SLO_POLICY
    events: EventLog = field(default_factory=EventLog)
    scale_frequency: bool = True
    emergency_enabled: bool = True
    #: Queue length that triggers the emergency escalation.
    emergency_queue_threshold: int = 8
    #: Waiting time (relative to the TTFT SLO) that triggers escalation.
    emergency_wait_factor: float = 0.75
    #: Waiting time (seconds) beyond which requests are squashed.
    squash_wait_s: float = 30.0
    #: Headroom applied to the instance load when picking a frequency.
    frequency_headroom: float = 1.3
    _squashed_count: int = field(default=0, init=False)

    @property
    def pool_name(self) -> str:
        return self.pool_manager.pool.name

    @property
    def governing_type(self) -> str:
        return self.pool_manager.pool.governing_type

    @property
    def squashed_count(self) -> int:
        return self._squashed_count

    # ------------------------------------------------------------------
    # Frequency epoch
    # ------------------------------------------------------------------
    def frequency_epoch(self, now: float) -> Dict[str, int]:
        """Re-tune the frequency of every instance in the pool.

        Returns the frequency chosen per instance id.
        """
        chosen: Dict[str, int] = {}
        for instance in self.pool_manager.instances():
            if self.emergency_enabled and self._check_emergency(instance, now):
                chosen[instance.instance_id] = instance.frequency.current_frequency_mhz
                continue
            if not self.scale_frequency:
                continue
            frequency = self._best_frequency(instance)
            if frequency is not None:
                changed = instance.set_frequency(frequency, now)
                if changed:
                    self.events.emit(
                        now,
                        "freq_change",
                        f"instance:{instance.instance_id}",
                        frequency_mhz=frequency,
                        pool=self.pool_name,
                    )
            chosen[instance.instance_id] = instance.frequency.current_frequency_mhz
        return chosen

    def _best_frequency(self, instance: InstanceLike) -> Optional[int]:
        load = instance.load_estimate_tps
        # Keep headroom so small load upticks between frequency epochs do not
        # immediately violate the SLO.
        load_with_headroom = load * self.frequency_headroom
        try:
            return self.profile.best_frequency(
                self.governing_type, instance.tensor_parallelism, load_with_headroom
            )
        except KeyError:
            return None

    # ------------------------------------------------------------------
    # Emergency handling
    # ------------------------------------------------------------------
    def _ttft_slo(self, request: Request) -> float:
        request_type = classify_request(request)
        return self.slo_policy.ttft_slo(request_type) * max(1.0, request.slo_scale)

    def _check_emergency(self, instance: InstanceLike, now: float) -> bool:
        """Detect and react to a building backlog; returns True if triggered."""
        oldest_wait = instance.oldest_wait_s(now)
        queue_length = instance.queue_length
        if queue_length < self.emergency_queue_threshold and oldest_wait <= 0.0:
            return False
        threshold = 0.5 * self._typical_ttft_slo()
        if queue_length < self.emergency_queue_threshold and oldest_wait < threshold:
            return False

        # Step 1: earliest-deadline-first reordering.
        instance.reorder_queue_by_deadline(self._ttft_slo)

        # Step 2: boost the GPU frequency to the maximum.
        max_frequency = instance.frequency.gpu.max_frequency_mhz
        instance.set_frequency(max_frequency, now)

        # Step 3: re-steer waiting requests to a sibling instance.
        if oldest_wait > self.emergency_wait_factor * self._typical_ttft_slo():
            self._resteer(instance, now)

        # Step 4: squash requests that waited far too long.
        if oldest_wait > self.squash_wait_s:
            squashed = instance.squash_stale(now, self.squash_wait_s)
            self._squashed_count += len(squashed)
            if squashed:
                self.events.emit(
                    now,
                    "squash",
                    f"instance:{instance.instance_id}",
                    count=len(squashed),
                    pool=self.pool_name,
                )

        self.events.emit(
            now,
            "emergency",
            f"instance:{instance.instance_id}",
            queue_length=queue_length,
            oldest_wait_s=oldest_wait,
            pool=self.pool_name,
        )
        return True

    def _typical_ttft_slo(self) -> float:
        from repro.workload.classification import RequestType

        return self.slo_policy.ttft_slo(RequestType.from_name(self.governing_type))

    def _resteer(self, instance: InstanceLike, now: float) -> int:
        """Move half of the waiting queue to the least-loaded sibling."""
        siblings: List[InstanceLike] = [
            other
            for other in self.pool_manager.instances()
            if other.instance_id != instance.instance_id and not other.is_offline(now)
        ]
        if not siblings:
            return 0
        target = min(siblings, key=lambda i: (i.queue_length, i.load_estimate_tps))
        if target.queue_length >= instance.queue_length:
            return 0
        to_move = instance.steal_waiting(max(1, instance.queue_length // 2))
        target.adopt(to_move, now)
        if to_move:
            self.events.emit(
                now,
                "resteer",
                f"instance:{instance.instance_id}",
                moved=len(to_move),
                target=target.instance_id,
                pool=self.pool_name,
            )
        return len(to_move)
