"""Simulation clock.

The cluster simulator advances in fixed-size steps (discrete time).  The
clock tracks the current simulated time and provides helpers to convert
between steps and seconds so that controllers, traces, and metrics all
agree on a single notion of time.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ClockError(RuntimeError):
    """Raised when the clock is advanced or rewound incorrectly."""


@dataclass
class SimClock:
    """Discrete simulation clock.

    Parameters
    ----------
    time_step:
        Duration of a single simulation step in seconds.
    start_time:
        Simulated wall-clock time (seconds) at step 0.  Traces use
        seconds since their own origin, so this is usually 0.
    """

    time_step: float = 1.0
    start_time: float = 0.0
    _step: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.time_step <= 0:
            raise ClockError(f"time_step must be positive, got {self.time_step}")

    @property
    def step(self) -> int:
        """Number of completed steps since the clock was created."""
        return self._step

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.start_time + self._step * self.time_step

    def advance(self, steps: int = 1) -> float:
        """Advance the clock by ``steps`` steps and return the new time."""
        if steps < 0:
            raise ClockError("cannot advance the clock by a negative number of steps")
        self._step += steps
        return self.now

    def time_of_step(self, step: int) -> float:
        """Return the simulated time at the beginning of ``step``."""
        return self.start_time + step * self.time_step

    def step_of_time(self, time_s: float) -> int:
        """Return the step index that contains the simulated time ``time_s``."""
        if time_s < self.start_time:
            raise ClockError(
                f"time {time_s} precedes the clock start {self.start_time}"
            )
        return int((time_s - self.start_time) // self.time_step)

    def reset(self) -> None:
        """Rewind the clock to step 0 (used when re-running an experiment)."""
        self._step = 0
