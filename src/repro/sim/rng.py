"""Deterministic random-number streams.

Every stochastic component (trace synthesis, Poisson arrivals, the
output-length predictor's error injection, ...) draws from its own named
stream derived from a single experiment seed.  This keeps experiments
reproducible while allowing components to be re-ordered or re-run
without perturbing each other's draws.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np


def _derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed from ``root_seed`` and a stream ``name``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def make_rng(root_seed: int, name: str) -> np.random.Generator:
    """Create a numpy Generator for the stream ``name`` under ``root_seed``."""
    return np.random.default_rng(_derive_seed(root_seed, name))


@dataclass
class RngStream:
    """A named random stream tied to an experiment seed.

    The object is a thin convenience wrapper so call-sites can pass a
    single ``RngStream`` around instead of a (seed, name) pair.
    """

    root_seed: int
    name: str

    def __post_init__(self) -> None:
        self._rng = make_rng(self.root_seed, self.name)

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator."""
        return self._rng

    def child(self, suffix: str) -> "RngStream":
        """Create a derived stream, e.g. ``traffic`` -> ``traffic/coding``."""
        return RngStream(self.root_seed, f"{self.name}/{suffix}")

    # Thin pass-throughs used widely across the code base -----------------
    def uniform(self, low: float = 0.0, high: float = 1.0, size=None):
        return self._rng.uniform(low, high, size)

    def poisson(self, lam: float, size=None):
        return self._rng.poisson(lam, size)

    def exponential(self, scale: float, size=None):
        return self._rng.exponential(scale, size)

    def lognormal(self, mean: float, sigma: float, size=None):
        return self._rng.lognormal(mean, sigma, size)

    def choice(self, options, size=None, p=None, replace=True):
        return self._rng.choice(options, size=size, p=p, replace=replace)

    def integers(self, low: int, high: int, size=None):
        return self._rng.integers(low, high, size)

    def random(self, size=None):
        return self._rng.random(size)
