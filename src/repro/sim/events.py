"""Structured event log for simulation runs.

Controllers and the cluster simulator emit events (reconfigurations,
emergencies, scale decisions).  The log is used by tests and by the
figure drivers that plot behaviour over time (Figures 9 and 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class Event:
    """A single timestamped simulation event.

    Attributes
    ----------
    time:
        Simulated time in seconds.
    kind:
        Short machine-readable event category, e.g. ``"reshard"``,
        ``"scale_out"``, ``"freq_change"``, ``"emergency"``.
    source:
        Name of the component that emitted the event.
    payload:
        Arbitrary extra data describing the event.
    """

    time: float
    kind: str
    source: str
    payload: Dict[str, Any] = field(default_factory=dict)


class EventLog:
    """Append-only list of :class:`Event` with simple query helpers."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def emit(self, time: float, kind: str, source: str, **payload: Any) -> Event:
        """Record and return a new event."""
        event = Event(time=time, kind=kind, source=source, payload=dict(payload))
        self._events.append(event)
        return event

    def of_kind(self, kind: str) -> List[Event]:
        """All events with the given ``kind``."""
        return [event for event in self._events if event.kind == kind]

    def between(self, start: float, end: float) -> List[Event]:
        """Events with ``start <= time < end``."""
        return [event for event in self._events if start <= event.time < end]

    def count(self, kind: Optional[str] = None) -> int:
        """Number of events, optionally restricted to one kind."""
        if kind is None:
            return len(self._events)
        return sum(1 for event in self._events if event.kind == kind)

    def last(self, kind: Optional[str] = None) -> Optional[Event]:
        """The most recent event (of ``kind`` if given), or ``None``."""
        if kind is None:
            return self._events[-1] if self._events else None
        for event in reversed(self._events):
            if event.kind == kind:
                return event
        return None

    def clear(self) -> None:
        self._events.clear()
