"""Periodic actions.

DynamoLLM's controllers run at different epochs: the cluster manager
re-evaluates instance counts every ~30 minutes, the pool manager
re-shards every ~5 minutes, and the instance manager re-tunes the GPU
frequency every ~5 seconds (Section IV-B).  ``PeriodicScheduler`` keeps
track of which controller actions are due at a given simulation step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List


@dataclass
class PeriodicAction:
    """A callback fired every ``period`` seconds of simulated time.

    Parameters
    ----------
    name:
        Human-readable name (used in event logs and error messages).
    period:
        Interval between invocations in seconds.
    callback:
        Called as ``callback(now)`` whenever the action is due.
    offset:
        Time of the first invocation.  Defaults to firing at time 0.
    """

    name: str
    period: float
    callback: Callable[[float], None]
    offset: float = 0.0
    _next_due: float = field(init=False)

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period for action {self.name!r} must be positive")
        self._next_due = self.offset

    @property
    def next_due(self) -> float:
        return self._next_due

    def maybe_fire(self, now: float) -> bool:
        """Fire the callback if the action is due at time ``now``.

        Returns ``True`` when the callback ran.  If the simulation stepped
        over several periods at once the action still fires only once and
        the next due time is advanced past ``now``.
        """
        if now + 1e-9 < self._next_due:
            return False
        self.callback(now)
        while self._next_due <= now + 1e-9:
            self._next_due += self.period
        return True


class PeriodicScheduler:
    """A collection of :class:`PeriodicAction` fired in registration order."""

    def __init__(self) -> None:
        self._actions: List[PeriodicAction] = []

    def add(
        self,
        name: str,
        period: float,
        callback: Callable[[float], None],
        offset: float = 0.0,
    ) -> PeriodicAction:
        action = PeriodicAction(name=name, period=period, callback=callback, offset=offset)
        self._actions.append(action)
        return action

    @property
    def actions(self) -> List[PeriodicAction]:
        return list(self._actions)

    def tick(self, now: float) -> List[str]:
        """Fire every due action; return the names of the actions that ran."""
        fired = []
        for action in self._actions:
            if action.maybe_fire(now):
                fired.append(action.name)
        return fired
