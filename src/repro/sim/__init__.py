"""Small discrete-time simulation kernel used by the cluster simulator.

The paper evaluates DynamoLLM both on a real cluster and with a
discrete-time simulator (Section V-E).  This package provides the
simulation primitives shared by every experiment in this reproduction:
a simulation clock, deterministic random number management, periodic
actions (the controller epochs), and a structured event log.
"""

from repro.sim.clock import SimClock
from repro.sim.events import Event, EventLog
from repro.sim.rng import RngStream, make_rng
from repro.sim.schedule import PeriodicAction, PeriodicScheduler

__all__ = [
    "SimClock",
    "Event",
    "EventLog",
    "RngStream",
    "make_rng",
    "PeriodicAction",
    "PeriodicScheduler",
]
