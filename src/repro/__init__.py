"""DynamoLLM reproduction: energy-management for LLM inference clusters.

This package reproduces *DynamoLLM: Designing LLM Inference Clusters for
Performance and Energy Efficiency* (HPCA 2025) as a trace-driven
simulation library:

* :mod:`repro.llm` — model and GPU catalog;
* :mod:`repro.perf` — analytical energy/latency models and profiles;
* :mod:`repro.workload` — request classification, SLOs, traces, predictors;
* :mod:`repro.cluster` — the discrete-time cluster simulator;
* :mod:`repro.core` — the DynamoLLM controllers (the paper's contribution);
* :mod:`repro.policies` — the six evaluated systems;
* :mod:`repro.metrics` — energy, latency, power, carbon and cost accounting;
* :mod:`repro.api` — the unified experiment API: immutable
  :class:`~repro.api.scenario.Scenario` descriptions, the stepped
  :class:`~repro.api.engine.SimulationEngine` with pluggable observers,
  and parallel :func:`~repro.api.executor.run_grid` sweep execution;
* :mod:`repro.experiments` — drivers regenerating every table and figure,
  built on :mod:`repro.api`.

Quickstart (library)::

    from repro import quick_comparison
    results = quick_comparison(duration_s=600)
    print(results["normalized_energy"])

Quickstart (scenario API)::

    from repro.api import TraceSpec, run_grid, sweep
    grid = sweep(
        policies=("SinglePool", "DynamoLLM"),
        traces=(TraceSpec(rate_scale=10.0, duration_s=600.0),),
        accuracies=(None, 0.8),
    )
    summaries = run_grid(grid, workers=4, lean=True)

Quickstart (CLI)::

    python -m repro run --policy DynamoLLM --trace one_hour --duration 600
    python -m repro list-experiments
"""

import importlib
from typing import Any

#: Lazy re-export table (PEP 562).  The root package must not eagerly
#: import its subpackages: ``import repro.core`` has to succeed without
#: pulling ``repro.cluster`` into ``sys.modules`` (the controllers
#: depend only on the protocols in :mod:`repro.core.interfaces`; the
#: concrete cluster objects are injected at the composition roots).
#: Each convenience name resolves — and is cached on the module — on
#: first attribute access.
_EXPORTS = {
    "MODEL_CATALOG": "repro.llm",
    "get_model": "repro.llm",
    "LLAMA2_70B": "repro.llm",
    "H100": "repro.llm",
    "DGX_H100": "repro.llm",
    "EnergyModel": "repro.perf",
    "InstanceConfig": "repro.perf",
    "Profiler": "repro.perf",
    "EnergyPerformanceProfile": "repro.perf",
    "get_default_profile": "repro.perf.profiler",
    "Request": "repro.workload",
    "classify_request": "repro.workload",
    "DEFAULT_SLO_POLICY": "repro.workload",
    "make_one_hour_trace": "repro.workload",
    "make_day_trace": "repro.workload",
    "make_week_trace": "repro.workload",
    "GPUCluster": "repro.cluster",
    "InferenceInstance": "repro.cluster",
    "DynamoLLM": "repro.core",
    "ControllerKnobs": "repro.core",
    "ControllerEpochs": "repro.core",
    "ALL_POLICIES": "repro.policies",
    "DYNAMO_LLM": "repro.policies",
    "SINGLE_POOL": "repro.policies",
    "build_policy": "repro.policies",
    "get_policy_spec": "repro.policies",
    "RunSummary": "repro.metrics",
    "CarbonIntensityTrace": "repro.metrics",
    "CostModel": "repro.metrics",
    "ExperimentConfig": "repro.experiments",
    "run_policy_on_trace": "repro.experiments",
    "run_all_policies": "repro.experiments",
    "FluidRunner": "repro.experiments",
    "Observer": "repro.api",
    "Scenario": "repro.api",
    "ScenarioGrid": "repro.api",
    "SimulationEngine": "repro.api",
    "TraceSpec": "repro.api",
    "run_grid": "repro.api",
    "run_policies": "repro.api",
    "run_scenario": "repro.api",
    "runs": "repro.api",
    "sweep": "repro.api",
}

#: Subpackages reachable as ``repro.<name>`` after a bare ``import repro``.
_SUBPACKAGES = frozenset(
    {
        "llm",
        "perf",
        "workload",
        "sim",
        "cluster",
        "core",
        "policies",
        "metrics",
        "experiments",
        "api",
        "lint",
    }
)


def __getattr__(name: str) -> Any:
    source = _EXPORTS.get(name)
    if source is not None:
        value = getattr(importlib.import_module(source), name)
        globals()[name] = value
        return value
    if name in _SUBPACKAGES:
        return importlib.import_module(f"repro.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> "list[str]":
    return sorted(set(globals()) | set(__all__) | _SUBPACKAGES)


__version__ = "0.2.0"

__all__ = [
    "MODEL_CATALOG",
    "get_model",
    "LLAMA2_70B",
    "H100",
    "DGX_H100",
    "EnergyModel",
    "InstanceConfig",
    "Profiler",
    "EnergyPerformanceProfile",
    "get_default_profile",
    "Request",
    "classify_request",
    "DEFAULT_SLO_POLICY",
    "make_one_hour_trace",
    "make_day_trace",
    "make_week_trace",
    "GPUCluster",
    "InferenceInstance",
    "DynamoLLM",
    "ControllerKnobs",
    "ControllerEpochs",
    "ALL_POLICIES",
    "DYNAMO_LLM",
    "SINGLE_POOL",
    "build_policy",
    "get_policy_spec",
    "RunSummary",
    "CarbonIntensityTrace",
    "CostModel",
    "ExperimentConfig",
    "run_policy_on_trace",
    "run_all_policies",
    "FluidRunner",
    "quick_comparison",
    # Unified scenario/engine API
    "Scenario",
    "ScenarioGrid",
    "TraceSpec",
    "SimulationEngine",
    "Observer",
    "sweep",
    "runs",
    "run_grid",
    "run_scenario",
    "run_policies",
]


def quick_comparison(
    duration_s: float = 600.0,
    rate_scale: float = 10.0,
    service: str = "conversation",
    policies=None,
    workers=None,
):
    """Run a short head-to-head comparison of the evaluated systems.

    A convenience entry point for the README quickstart: generates a
    short slice of the synthetic 1-hour trace, runs the selected
    policies (in parallel when ``workers`` > 1), and returns their
    summaries plus SinglePool-normalised energy.
    """
    from repro.api import run_policies
    from repro.experiments import ExperimentConfig
    from repro.metrics.summary import compare_energy
    from repro.policies import ALL_POLICIES
    from repro.workload import make_one_hour_trace

    trace = make_one_hour_trace(service, rate_scale=rate_scale)
    if duration_s < trace.duration:
        trace = trace.slice(0.0, duration_s)
    summaries = run_policies(
        trace, policies or ALL_POLICIES, ExperimentConfig(), workers=workers
    )
    return {
        "summaries": summaries,
        "normalized_energy": compare_energy(summaries, baseline="SinglePool"),
    }
