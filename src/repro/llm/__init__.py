"""Model and hardware catalog.

This package describes the LLMs evaluated in the paper (Table III) and
the NVIDIA H100 GPU / DGX server they run on.  These specifications feed
the analytical energy-performance models in :mod:`repro.perf`.
"""

from repro.llm.gpu import GPUSpec, ServerSpec, H100, DGX_H100
from repro.llm.catalog import (
    ModelSpec,
    MODEL_CATALOG,
    get_model,
    list_models,
    LLAMA2_13B,
    LLAMA2_70B,
    LLAMA3_70B,
    MIXTRAL_8X7B,
    MIXTRAL_8X22B,
    FALCON_180B,
    BLOOM_176B,
)

__all__ = [
    "GPUSpec",
    "ServerSpec",
    "H100",
    "DGX_H100",
    "ModelSpec",
    "MODEL_CATALOG",
    "get_model",
    "list_models",
    "LLAMA2_13B",
    "LLAMA2_70B",
    "LLAMA3_70B",
    "MIXTRAL_8X7B",
    "MIXTRAL_8X22B",
    "FALCON_180B",
    "BLOOM_176B",
]
