"""Catalog of the LLMs evaluated in the paper.

Table III of the paper characterises six models: Llama2-13B,
Mixtral-8x7B, Llama2-70B, Llama3-70B, Mixtral-8x22B and Falcon-180B;
Section V-A additionally mentions BLOOM.  The specifications below are
taken from the public model cards.  ``active_params_b`` differs from
``total_params_b`` only for mixture-of-experts models, where a token
only activates a subset of the experts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.llm.gpu import GPUSpec, ServerSpec, DGX_H100

# Bytes per parameter in half precision (FP16/BF16 weights).
BYTES_PER_PARAM_FP16 = 2.0

# Fraction of GPU memory that must remain free for activations, CUDA
# context and fragmentation; the remainder is split between weights and
# the KV cache.
_MEMORY_HEADROOM_FRACTION = 0.08


@dataclass(frozen=True)
class ModelSpec:
    """Static description of an LLM used by the performance models.

    Attributes
    ----------
    name:
        Canonical model name (matches the paper's naming).
    total_params_b:
        Total parameter count in billions (stored weights).
    active_params_b:
        Parameters activated per token in billions; equals
        ``total_params_b`` for dense models.
    n_layers / hidden_size / n_heads / n_kv_heads:
        Transformer shape; used for KV-cache sizing and communication
        volume estimates.
    max_context:
        Maximum supported context length in tokens.
    is_moe:
        Whether the model is a mixture-of-experts.
    """

    name: str
    total_params_b: float
    active_params_b: float
    n_layers: int
    hidden_size: int
    n_heads: int
    n_kv_heads: int
    max_context: int = 8192
    is_moe: bool = False

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------
    @property
    def weight_bytes(self) -> float:
        """Total bytes of model weights in half precision."""
        return self.total_params_b * 1e9 * BYTES_PER_PARAM_FP16

    @property
    def weight_gb(self) -> float:
        return self.weight_bytes / 1e9

    @property
    def active_weight_bytes(self) -> float:
        """Bytes of weights touched per generated token (MoE-aware)."""
        return self.active_params_b * 1e9 * BYTES_PER_PARAM_FP16

    def kv_bytes_per_token(self) -> float:
        """Bytes of KV cache stored per token of context (whole model)."""
        head_dim = self.hidden_size / self.n_heads
        # 2 tensors (K and V) * layers * kv heads * head_dim * 2 bytes.
        return 2.0 * self.n_layers * self.n_kv_heads * head_dim * BYTES_PER_PARAM_FP16

    def weight_gb_per_gpu(self, tensor_parallelism: int) -> float:
        """Weights resident on each GPU of a TP group."""
        if tensor_parallelism <= 0:
            raise ValueError("tensor parallelism must be positive")
        return self.weight_gb / tensor_parallelism

    def kv_capacity_tokens(
        self, tensor_parallelism: int, server: ServerSpec = DGX_H100
    ) -> float:
        """Number of context tokens the KV cache can hold at a given TP.

        The KV cache occupies whatever GPU memory is left after the
        weight shard and a fixed headroom on each GPU of the group.
        Returns 0 if the weights alone do not fit.
        """
        gpu: GPUSpec = server.gpu
        usable_per_gpu = gpu.memory_gb * (1.0 - _MEMORY_HEADROOM_FRACTION)
        free_per_gpu = usable_per_gpu - self.weight_gb_per_gpu(tensor_parallelism)
        if free_per_gpu <= 0:
            return 0.0
        free_total_bytes = free_per_gpu * 1e9 * tensor_parallelism
        return free_total_bytes / self.kv_bytes_per_token()

    def fits(self, tensor_parallelism: int, server: ServerSpec = DGX_H100) -> bool:
        """Whether the model (plus a minimal KV cache) fits at this TP."""
        # Require room for at least 4k tokens of KV cache so that the
        # instance can actually serve requests, not merely hold weights.
        return self.kv_capacity_tokens(tensor_parallelism, server) >= 4096

    def min_tensor_parallelism(self, server: ServerSpec = DGX_H100) -> int:
        """Smallest supported TP degree at which the model fits."""
        for tp in server.supported_tensor_parallelism:
            if self.fits(tp, server):
                return tp
        raise ValueError(
            f"model {self.name} does not fit on a single {server.name} server"
        )

    def feasible_tensor_parallelisms(
        self, server: ServerSpec = DGX_H100
    ) -> List[int]:
        """All supported TP degrees at which the model fits on the server."""
        return [tp for tp in server.supported_tensor_parallelism if self.fits(tp, server)]


# ----------------------------------------------------------------------
# Catalog entries (public model-card numbers)
# ----------------------------------------------------------------------
LLAMA2_13B = ModelSpec(
    name="Llama2-13B",
    total_params_b=13.0,
    active_params_b=13.0,
    n_layers=40,
    hidden_size=5120,
    n_heads=40,
    n_kv_heads=40,
    max_context=4096,
)

LLAMA2_70B = ModelSpec(
    name="Llama2-70B",
    total_params_b=70.0,
    active_params_b=70.0,
    n_layers=80,
    hidden_size=8192,
    n_heads=64,
    n_kv_heads=8,
    max_context=4096,
)

LLAMA3_70B = ModelSpec(
    name="Llama3-70B",
    total_params_b=70.6,
    active_params_b=70.6,
    n_layers=80,
    hidden_size=8192,
    n_heads=64,
    n_kv_heads=8,
    max_context=8192,
)

MIXTRAL_8X7B = ModelSpec(
    name="Mixtral-8x7B",
    total_params_b=46.7,
    active_params_b=12.9,
    n_layers=32,
    hidden_size=4096,
    n_heads=32,
    n_kv_heads=8,
    max_context=32768,
    is_moe=True,
)

MIXTRAL_8X22B = ModelSpec(
    name="Mixtral-8x22B",
    total_params_b=141.0,
    active_params_b=39.0,
    n_layers=56,
    hidden_size=6144,
    n_heads=48,
    n_kv_heads=8,
    max_context=65536,
    is_moe=True,
)

FALCON_180B = ModelSpec(
    name="Falcon-180B",
    total_params_b=180.0,
    active_params_b=180.0,
    n_layers=80,
    hidden_size=14848,
    n_heads=232,
    n_kv_heads=8,
    max_context=2048,
)

BLOOM_176B = ModelSpec(
    name="BLOOM-176B",
    total_params_b=176.0,
    active_params_b=176.0,
    n_layers=70,
    hidden_size=14336,
    n_heads=112,
    n_kv_heads=112,
    max_context=2048,
)

MODEL_CATALOG: Dict[str, ModelSpec] = {
    spec.name: spec
    for spec in (
        LLAMA2_13B,
        LLAMA2_70B,
        LLAMA3_70B,
        MIXTRAL_8X7B,
        MIXTRAL_8X22B,
        FALCON_180B,
        BLOOM_176B,
    )
}


def get_model(name: str) -> ModelSpec:
    """Look up a model by name, with a helpful error on typos."""
    try:
        return MODEL_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_CATALOG))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None


def list_models() -> List[str]:
    """Names of all catalogued models."""
    return sorted(MODEL_CATALOG)
