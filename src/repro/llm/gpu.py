"""GPU and server hardware specifications.

The paper evaluates on NVIDIA DGX H100 servers (8 H100 SXM GPUs linked
by NVLink).  The numbers below are public datasheet values plus the two
quantities the paper reports directly: the usable NVLink bandwidth used
for re-sharding (300 GB/s, Table VI) and the supported core-frequency
range used for DVFS (800-1980 MHz, Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a single GPU.

    Attributes
    ----------
    name:
        Marketing name of the part.
    memory_gb:
        HBM capacity in gigabytes.
    peak_fp16_tflops:
        Peak dense FP16/BF16 tensor throughput at maximum frequency.
    memory_bandwidth_gbps:
        Peak HBM bandwidth in GB/s.
    nvlink_bandwidth_gbps:
        Per-GPU NVLink bandwidth usable for weight transfers in GB/s.
    max_frequency_mhz / min_frequency_mhz:
        Supported core clock range for DVFS.
    frequency_step_mhz:
        Granularity at which DynamoLLM profiles frequencies.
    tdp_watts:
        Board power at full load and maximum frequency.
    idle_watts:
        Power drawn by an idle but initialised GPU (weights resident).
    voltage_floor:
        Fraction of nominal voltage below which DVFS cannot reduce the
        supply voltage further; below the corresponding frequency the
        energy-per-operation stops improving.
    """

    name: str = "H100-SXM"
    memory_gb: float = 80.0
    peak_fp16_tflops: float = 989.0
    memory_bandwidth_gbps: float = 3350.0
    nvlink_bandwidth_gbps: float = 300.0
    max_frequency_mhz: int = 1980
    min_frequency_mhz: int = 800
    frequency_step_mhz: int = 200
    tdp_watts: float = 700.0
    idle_watts: float = 85.0
    voltage_floor: float = 0.78

    def frequency_levels(self) -> Tuple[int, ...]:
        """Profiled frequency levels, ``min..max`` in ``frequency_step`` steps.

        The maximum frequency is always included even if the stride does
        not land on it exactly (the paper profiles 800-1980 MHz in 200 MHz
        steps and uses 1980 MHz as the highest-performance setting).
        """
        levels = list(
            range(self.min_frequency_mhz, self.max_frequency_mhz + 1, self.frequency_step_mhz)
        )
        if levels[-1] != self.max_frequency_mhz:
            levels.append(self.max_frequency_mhz)
        return tuple(levels)

    def frequency_ratio(self, frequency_mhz: float) -> float:
        """Core frequency as a fraction of the maximum frequency."""
        return float(frequency_mhz) / float(self.max_frequency_mhz)

    def voltage_ratio(self, frequency_mhz: float) -> float:
        """Approximate supply-voltage ratio at the given frequency.

        Voltage tracks frequency linearly until it hits the floor; below
        that point lowering the frequency no longer lowers the voltage.
        """
        ratio = 0.55 + 0.45 * self.frequency_ratio(frequency_mhz)
        return max(self.voltage_floor, min(1.0, ratio))

    def validate_frequency(self, frequency_mhz: float) -> None:
        """Raise ``ValueError`` if the frequency is outside the DVFS range."""
        if not (self.min_frequency_mhz <= frequency_mhz <= self.max_frequency_mhz):
            raise ValueError(
                f"frequency {frequency_mhz} MHz outside supported range "
                f"[{self.min_frequency_mhz}, {self.max_frequency_mhz}] for {self.name}"
            )


@dataclass(frozen=True)
class ServerSpec:
    """An inference server: several GPUs sharing an NVLink domain.

    The paper only considers tensor parallelism inside one server (all
    open-source models fit on 8 GPUs), so a server is also the largest
    unit a single model instance can span.
    """

    name: str = "DGX-H100"
    gpu: GPUSpec = field(default_factory=GPUSpec)
    gpus_per_server: int = 8
    host_idle_watts: float = 500.0
    supported_tensor_parallelism: Tuple[int, ...] = (1, 2, 4, 8)

    @property
    def total_memory_gb(self) -> float:
        return self.gpu.memory_gb * self.gpus_per_server

    @property
    def max_power_watts(self) -> float:
        """Upper bound on server power (all GPUs at TDP plus the host)."""
        return self.gpu.tdp_watts * self.gpus_per_server + self.host_idle_watts

    def validate_tensor_parallelism(self, tp: int) -> None:
        if tp not in self.supported_tensor_parallelism:
            raise ValueError(
                f"tensor parallelism {tp} not supported on {self.name}; "
                f"supported degrees are {self.supported_tensor_parallelism}"
            )
        if tp > self.gpus_per_server:
            raise ValueError(
                f"tensor parallelism {tp} exceeds GPUs per server ({self.gpus_per_server})"
            )


# Canonical hardware used throughout the reproduction.
H100 = GPUSpec()
DGX_H100 = ServerSpec()
