"""Operational cost model (paper Section V-F).

User cost is dominated by GPU rental: the paper uses the Azure ND H100
v5 list price (8 GPUs per VM).  Energy cost is computed from a flat
electricity price and is small in comparison — the paper reports only a
few dollars per hour of energy savings against >$1000/h of GPU savings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class CostModel:
    """Prices used for the cost comparison.

    Attributes
    ----------
    server_price_per_hour:
        Rental price of one 8-GPU server per hour (ND96isr H100 v5 is
        roughly $98/h on-demand).
    electricity_price_per_kwh:
        Flat electricity price in $/kWh.
    """

    server_price_per_hour: float = 98.0
    electricity_price_per_kwh: float = 0.12
    gpus_per_server: int = 8

    @property
    def gpu_price_per_hour(self) -> float:
        return self.server_price_per_hour / self.gpus_per_server

    def gpu_cost(self, gpu_hours: float) -> float:
        """Rental cost of the consumed GPU-hours."""
        return gpu_hours * self.gpu_price_per_hour

    def energy_cost(self, energy_kwh: float) -> float:
        return energy_kwh * self.electricity_price_per_kwh

    def total_cost(self, gpu_hours: float, energy_kwh: float) -> float:
        return self.gpu_cost(gpu_hours) + self.energy_cost(energy_kwh)

    def summary(self, gpu_hours: float, energy_kwh: float) -> Dict[str, float]:
        return {
            "gpu_hours": gpu_hours,
            "gpu_cost_usd": self.gpu_cost(gpu_hours),
            "energy_kwh": energy_kwh,
            "energy_cost_usd": self.energy_cost(energy_kwh),
            "total_cost_usd": self.total_cost(gpu_hours, energy_kwh),
        }

    def savings(
        self,
        baseline_gpu_hours: float,
        baseline_energy_kwh: float,
        optimized_gpu_hours: float,
        optimized_energy_kwh: float,
    ) -> Dict[str, float]:
        """Absolute and relative savings of an optimised run vs a baseline."""
        baseline_total = self.total_cost(baseline_gpu_hours, baseline_energy_kwh)
        optimized_total = self.total_cost(optimized_gpu_hours, optimized_energy_kwh)
        saving = baseline_total - optimized_total
        return {
            "baseline_cost_usd": baseline_total,
            "optimized_cost_usd": optimized_total,
            "saving_usd": saving,
            "saving_fraction": saving / baseline_total if baseline_total > 0 else 0.0,
            "gpu_saving_usd": self.gpu_cost(baseline_gpu_hours - optimized_gpu_hours),
            "energy_saving_usd": self.energy_cost(
                baseline_energy_kwh - optimized_energy_kwh
            ),
        }


@dataclass
class CostAccount:
    """Streaming operational-cost accounting, accumulated per step.

    Tracks GPU-seconds and energy exactly as the cluster does
    (``online_gpus * dt`` and per-step Wh, in step order), so the totals
    reproduce the post-hoc ``RunSummary.cost_usd()`` computation without
    needing the finished cluster object.
    """

    cost_model: CostModel = field(default_factory=CostModel)
    gpu_seconds: float = 0.0
    energy_wh: float = 0.0

    def add_step(self, dt: float, online_gpus: int, energy_wh: float) -> None:
        """Record one simulation step's resource consumption."""
        self.gpu_seconds += online_gpus * dt
        self.energy_wh += energy_wh

    @property
    def gpu_hours(self) -> float:
        return self.gpu_seconds / 3600.0

    @property
    def energy_kwh(self) -> float:
        return self.energy_wh / 1000.0

    @property
    def gpu_cost_usd(self) -> float:
        return self.cost_model.gpu_cost(self.gpu_hours)

    @property
    def energy_cost_usd(self) -> float:
        return self.cost_model.energy_cost(self.energy_kwh)

    @property
    def total_usd(self) -> float:
        return self.cost_model.total_cost(self.gpu_hours, self.energy_kwh)

    def summary(self) -> Dict[str, float]:
        return self.cost_model.summary(self.gpu_hours, self.energy_kwh)
