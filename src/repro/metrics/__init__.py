"""Metrics: latency percentiles, energy, power, carbon and cost accounting."""

from repro.metrics.latency import LatencyStats
from repro.metrics.energy import EnergyAccount
from repro.metrics.power import PowerTimeSeries
from repro.metrics.carbon import CarbonIntensityTrace, carbon_emissions_kg
from repro.metrics.cost import CostModel
from repro.metrics.summary import RunSummary, compare_energy

__all__ = [
    "LatencyStats",
    "EnergyAccount",
    "PowerTimeSeries",
    "CarbonIntensityTrace",
    "carbon_emissions_kg",
    "CostModel",
    "RunSummary",
    "compare_energy",
]
