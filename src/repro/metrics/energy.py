"""Energy accounting (paper Figures 6, 14, 15)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.workload.classification import REQUEST_TYPE_NAMES


@dataclass
class EnergyAccount:
    """Accumulates cluster energy, overall and per request type."""

    total_wh: float = 0.0
    by_type_wh: Dict[str, float] = field(default_factory=dict)
    timeline: List[Tuple[float, float]] = field(default_factory=list)

    def add_step(self, time: float, energy_wh: float, by_type_wh: Dict[str, float]) -> None:
        """Record one simulation step's energy."""
        self.total_wh += energy_wh
        self.timeline.append((time, energy_wh))
        for type_name, value in by_type_wh.items():
            self.by_type_wh[type_name] = self.by_type_wh.get(type_name, 0.0) + value

    @property
    def total_kwh(self) -> float:
        return self.total_wh / 1000.0

    def type_breakdown_kwh(self) -> Dict[str, float]:
        """Energy per request-type bucket in kWh (the Figure 6 stacking)."""
        return {
            name: self.by_type_wh.get(name, 0.0) / 1000.0 for name in REQUEST_TYPE_NAMES
        }

    def binned_kwh(self, bin_seconds: float) -> List[Tuple[float, float]]:
        """Energy aggregated into fixed bins (the Figure 15 time series)."""
        if bin_seconds <= 0:
            raise ValueError("bin_seconds must be positive")
        bins: Dict[int, float] = {}
        for time, energy_wh in self.timeline:
            index = int(time // bin_seconds)
            bins[index] = bins.get(index, 0.0) + energy_wh
        return [
            (index * bin_seconds, bins[index] / 1000.0) for index in sorted(bins)
        ]

    def compact(self) -> "EnergyAccount":
        """Store the per-step timeline as a flat array (lean transfers).

        The ``(time, energy_wh)`` rows keep iterating and indexing the
        same way, so :func:`repro.metrics.carbon.carbon_emissions_kg` and
        :meth:`binned_kwh` are unaffected; only the pickled size shrinks.
        """
        import numpy as np

        if self.timeline and not isinstance(self.timeline, np.ndarray):
            self.timeline = np.asarray(self.timeline, dtype=float)
        return self

    def savings_vs(self, baseline: "EnergyAccount") -> float:
        """Fractional energy saving relative to a baseline account."""
        if baseline.total_wh <= 0:
            return 0.0
        return 1.0 - self.total_wh / baseline.total_wh
