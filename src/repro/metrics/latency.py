"""TTFT / TBT latency statistics (paper Figure 7).

Collects per-request outcomes and reports percentiles and SLO
attainment, both overall and per request type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.workload.classification import classify_request
from repro.workload.request import RequestOutcome
from repro.workload.slo import SLOPolicy, DEFAULT_SLO_POLICY


@dataclass
class LatencyStats:
    """Accumulates request outcomes and derives latency statistics."""

    slo_policy: SLOPolicy = DEFAULT_SLO_POLICY
    outcomes: List[RequestOutcome] = field(default_factory=list)

    def add(self, outcome: RequestOutcome) -> None:
        self.outcomes.append(outcome)

    def extend(self, outcomes: List[RequestOutcome]) -> None:
        self.outcomes.extend(outcomes)

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self.outcomes)

    @property
    def squashed_count(self) -> int:
        return sum(1 for o in self.outcomes if o.squashed)

    def _served(self) -> List[RequestOutcome]:
        return [o for o in self.outcomes if not o.squashed]

    def ttft_values(self) -> np.ndarray:
        return np.asarray([o.ttft for o in self._served()], dtype=float)

    def tbt_values(self) -> np.ndarray:
        return np.asarray([o.tbt for o in self._served()], dtype=float)

    def ttft_percentile(self, percentile: float) -> float:
        values = self.ttft_values()
        if values.size == 0:
            return 0.0
        return float(np.percentile(values, percentile))

    def tbt_percentile(self, percentile: float) -> float:
        values = self.tbt_values()
        if values.size == 0:
            return 0.0
        return float(np.percentile(values, percentile))

    def percentile_table(self, percentiles=(50, 90, 99)) -> Dict[str, Dict[int, float]]:
        """TTFT and TBT at the requested percentiles (Figure 7's rows)."""
        return {
            "ttft_s": {int(p): self.ttft_percentile(p) for p in percentiles},
            "tbt_s": {int(p): self.tbt_percentile(p) for p in percentiles},
        }

    # ------------------------------------------------------------------
    def slo_attainment(self) -> float:
        """Fraction of requests that met both their TTFT and TBT SLOs."""
        if not self.outcomes:
            return 1.0
        met = 0
        for outcome in self.outcomes:
            if outcome.squashed:
                continue
            request_type = classify_request(outcome.request)
            slo = self.slo_policy.slo_for(request_type).scaled(
                max(1.0, outcome.request.slo_scale)
            )
            if outcome.meets(slo.ttft_s, slo.tbt_s):
                met += 1
        return met / len(self.outcomes)

    def violations(self) -> int:
        """Number of served requests that violated at least one SLO."""
        return len(self._served()) - int(round(self.slo_attainment() * len(self.outcomes)))

    # ------------------------------------------------------------------
    def by_request_type(self) -> Dict[str, "LatencyStats"]:
        """Split the collected outcomes per request-type bucket."""
        groups: Dict[str, LatencyStats] = {}
        for outcome in self.outcomes:
            name = classify_request(outcome.request).name
            groups.setdefault(name, LatencyStats(slo_policy=self.slo_policy)).add(outcome)
        return groups

    def mean_ttft(self) -> float:
        values = self.ttft_values()
        return float(values.mean()) if values.size else 0.0

    def mean_tbt(self) -> float:
        values = self.tbt_values()
        return float(values.mean()) if values.size else 0.0
