"""TTFT / TBT latency statistics (paper Figure 7).

Collects per-request outcomes and reports percentiles and SLO
attainment, both overall and per request type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.workload.classification import classify_request
from repro.workload.request import RequestOutcome
from repro.workload.slo import SLOPolicy, DEFAULT_SLO_POLICY


@dataclass
class LatencyStats:
    """Accumulates request outcomes and derives latency statistics."""

    slo_policy: SLOPolicy = DEFAULT_SLO_POLICY
    outcomes: List[RequestOutcome] = field(default_factory=list)

    def add(self, outcome: RequestOutcome) -> None:
        self.outcomes.append(outcome)

    def extend(self, outcomes: List[RequestOutcome]) -> None:
        self.outcomes.extend(outcomes)

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self.outcomes)

    @property
    def squashed_count(self) -> int:
        return sum(1 for o in self.outcomes if o.squashed)

    def _served(self) -> List[RequestOutcome]:
        return [o for o in self.outcomes if not o.squashed]

    def ttft_values(self) -> np.ndarray:
        return np.asarray([o.ttft for o in self._served()], dtype=float)

    def tbt_values(self) -> np.ndarray:
        return np.asarray([o.tbt for o in self._served()], dtype=float)

    def ttft_percentile(self, percentile: float) -> float:
        values = self.ttft_values()
        if values.size == 0:
            return 0.0
        return float(np.percentile(values, percentile))

    def tbt_percentile(self, percentile: float) -> float:
        values = self.tbt_values()
        if values.size == 0:
            return 0.0
        return float(np.percentile(values, percentile))

    def percentile_table(self, percentiles=(50, 90, 99)) -> Dict[str, Dict[int, float]]:
        """TTFT and TBT at the requested percentiles (Figure 7's rows)."""
        return {
            "ttft_s": {int(p): self.ttft_percentile(p) for p in percentiles},
            "tbt_s": {int(p): self.tbt_percentile(p) for p in percentiles},
        }

    # ------------------------------------------------------------------
    def slo_attainment(self) -> float:
        """Fraction of requests that met both their TTFT and TBT SLOs."""
        if not self.outcomes:
            return 1.0
        met = 0
        for outcome in self.outcomes:
            if outcome.squashed:
                continue
            request_type = classify_request(outcome.request)
            slo = self.slo_policy.slo_for(request_type).scaled(
                max(1.0, outcome.request.slo_scale)
            )
            if outcome.meets(slo.ttft_s, slo.tbt_s):
                met += 1
        return met / len(self.outcomes)

    def violations(self) -> int:
        """Number of served requests that violated at least one SLO."""
        return len(self._served()) - int(round(self.slo_attainment() * len(self.outcomes)))

    # ------------------------------------------------------------------
    def by_request_type(self) -> Dict[str, "LatencyStats"]:
        """Split the collected outcomes per request-type bucket."""
        groups: Dict[str, LatencyStats] = {}
        for outcome in self.outcomes:
            name = classify_request(outcome.request).name
            groups.setdefault(name, LatencyStats(slo_policy=self.slo_policy)).add(outcome)
        return groups

    def mean_ttft(self) -> float:
        values = self.ttft_values()
        return float(values.mean()) if values.size else 0.0

    def mean_tbt(self) -> float:
        values = self.tbt_values()
        return float(values.mean()) if values.size else 0.0

    # ------------------------------------------------------------------
    def condensed(self, include_types: bool = True) -> "CondensedLatencyStats":
        """Collapse the retained outcomes into numeric arrays.

        The result answers every statistical query of this class with
        identical values (same floats, same order) but pickles orders of
        magnitude smaller, because the per-request outcome/request
        objects are dropped.  Used by the sweep executors to keep lean
        result transfer cheap across process pools.
        """
        # Single pass over the outcomes: each is classified once and the
        # scaled SLO is memoised per (type, slo_scale), instead of the
        # historical ~8 passes (separate met loop, per-type regroup and
        # per-group value extraction).  SLO construction is pure, so the
        # memoised thresholds — and every emitted float — are identical.
        slo_policy = self.slo_policy
        scaled_slos: Dict[tuple, object] = {}
        met = 0
        squashed = 0
        ttft_all: List[float] = []
        tbt_all: List[float] = []
        # name -> [ttft samples, tbt samples, total, squashed, met];
        # insertion order matches by_request_type()'s first-occurrence order.
        groups: Dict[str, list] = {}
        for outcome in self.outcomes:
            request = outcome.request
            request_type = classify_request(request)
            name = request_type.name
            if include_types:
                acc = groups.get(name)
                if acc is None:
                    acc = groups[name] = [[], [], 0, 0, 0]
                acc[2] += 1
            if outcome.squashed:
                squashed += 1
                if include_types:
                    acc[3] += 1
                continue
            ttft = outcome.ttft
            tbt = outcome.tbt
            ttft_all.append(ttft)
            tbt_all.append(tbt)
            key = (name, request.slo_scale)
            slo = scaled_slos.get(key)
            if slo is None:
                slo = slo_policy.slo_for(request_type).scaled(
                    max(1.0, request.slo_scale)
                )
                scaled_slos[key] = slo
            ok = outcome.meets(slo.ttft_s, slo.tbt_s)  # type: ignore[attr-defined]
            if ok:
                met += 1
            if include_types:
                acc[0].append(ttft)
                acc[1].append(tbt)
                if ok:
                    acc[4] += 1
        per_type = {
            name: CondensedLatencyStats(
                slo_policy=slo_policy,
                ttft=np.asarray(acc[0], dtype=float),
                tbt=np.asarray(acc[1], dtype=float),
                total=acc[2],
                squashed=acc[3],
                met=acc[4],
            )
            for name, acc in groups.items()
        }
        return CondensedLatencyStats(
            slo_policy=slo_policy,
            ttft=np.asarray(ttft_all, dtype=float),
            tbt=np.asarray(tbt_all, dtype=float),
            total=self.count,
            squashed=squashed,
            met=met,
            per_type=per_type,
        )


@dataclass
class CondensedLatencyStats:
    """Array-backed latency statistics with the :class:`LatencyStats` API.

    Holds the served TTFT/TBT samples plus precomputed SLO counters
    instead of per-request outcome objects; every derived statistic
    (percentiles, means, attainment, per-type split) matches the
    originating :class:`LatencyStats` exactly.  New outcomes cannot be
    added — condensing happens after a run finishes.
    """

    slo_policy: SLOPolicy
    ttft: np.ndarray
    tbt: np.ndarray
    total: int
    squashed: int
    met: int
    per_type: Dict[str, "CondensedLatencyStats"] = field(default_factory=dict)

    # -- the LatencyStats read API ------------------------------------
    @property
    def count(self) -> int:
        return self.total

    @property
    def squashed_count(self) -> int:
        return self.squashed

    def ttft_values(self) -> np.ndarray:
        return self.ttft

    def tbt_values(self) -> np.ndarray:
        return self.tbt

    def ttft_percentile(self, percentile: float) -> float:
        return float(np.percentile(self.ttft, percentile)) if self.ttft.size else 0.0

    def tbt_percentile(self, percentile: float) -> float:
        return float(np.percentile(self.tbt, percentile)) if self.tbt.size else 0.0

    def percentile_table(self, percentiles=(50, 90, 99)) -> Dict[str, Dict[int, float]]:
        return {
            "ttft_s": {int(p): self.ttft_percentile(p) for p in percentiles},
            "tbt_s": {int(p): self.tbt_percentile(p) for p in percentiles},
        }

    def slo_attainment(self) -> float:
        if self.total == 0:
            return 1.0
        return self.met / self.total

    def violations(self) -> int:
        served = self.total - self.squashed
        return served - int(round(self.slo_attainment() * self.total))

    def by_request_type(self) -> Dict[str, "CondensedLatencyStats"]:
        return self.per_type

    def mean_ttft(self) -> float:
        return float(self.ttft.mean()) if self.ttft.size else 0.0

    def mean_tbt(self) -> float:
        return float(self.tbt.mean()) if self.tbt.size else 0.0

    def condensed(self, include_types: bool = True) -> "CondensedLatencyStats":
        return self
