"""Run summaries: everything an experiment reports about one policy run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.metrics.carbon import CarbonAccount, CarbonIntensityTrace, carbon_emissions_kg
from repro.metrics.cost import CostAccount, CostModel
from repro.metrics.energy import EnergyAccount
from repro.metrics.latency import LatencyStats
from repro.metrics.power import PowerTimeSeries


@dataclass
class RunSummary:
    """Aggregated results of one simulated run of a policy on a trace."""

    policy: str
    trace: str
    duration_s: float
    energy: EnergyAccount
    latency: LatencyStats
    power: PowerTimeSeries
    gpu_hours: float = 0.0
    average_servers: float = 0.0
    frequency_timeline: List[Tuple[float, float]] = field(default_factory=list)
    pool_frequency_timeline: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    gpus_by_tp_timeline: List[Tuple[float, Dict[int, int]]] = field(default_factory=list)
    pool_gpus_by_tp_timeline: Dict[str, List[Tuple[float, Dict[int, int]]]] = field(
        default_factory=dict
    )
    pool_load_timeline: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    squashed_requests: int = 0
    routed_requests: int = 0
    #: Reconfiguration events over the run: controller epochs for the
    #: event backend, per-pool GPU-allocation changes for the fluid one.
    reconfigurations: int = 0
    #: Streaming collectors (populated by the default observer set).
    carbon: Optional[CarbonAccount] = None
    cost: Optional[CostAccount] = None
    pool_slo_attainment: Dict[str, float] = field(default_factory=dict)
    pool_request_counts: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def energy_kwh(self) -> float:
        return self.energy.total_kwh

    @property
    def mean_power_kw(self) -> float:
        return self.power.mean_cluster_power() / 1000.0

    def slo_attainment(self) -> float:
        return self.latency.slo_attainment()

    def carbon_kg(self, intensity: Optional[CarbonIntensityTrace] = None) -> float:
        intensity = intensity or CarbonIntensityTrace()
        return carbon_emissions_kg(self.energy.timeline, intensity)

    def cost_usd(self, cost_model: Optional[CostModel] = None) -> float:
        cost_model = cost_model or CostModel()
        return cost_model.total_cost(self.gpu_hours, self.energy_kwh)

    # ------------------------------------------------------------------
    def compact(self) -> "RunSummary":
        """Shrink this summary's serialised size for cross-process transfer.

        Lean sweeps on process pools used to spend most of their
        wall-clock pickling per-request outcome objects back to the
        parent.  Compacting condenses the latency outcomes into numeric
        arrays (identical derived statistics — percentiles, means, SLO
        attainment, per-type breakdowns) and stores the energy / power /
        carbon step samples as flat arrays.  The remaining streaming
        totals are O(pools) and kept as-is.  In-place; returns ``self``.
        """
        self.latency = self.latency.condensed()
        self.energy.compact()
        self.power.compact()
        if self.carbon is not None:
            self.carbon.compact()
        return self

    def headline(self) -> Dict[str, float]:
        """Compact scoreboard of the run."""
        table = self.latency.percentile_table()
        return {
            "energy_kwh": self.energy_kwh,
            "mean_power_kw": self.mean_power_kw,
            "gpu_hours": self.gpu_hours,
            "average_servers": self.average_servers,
            "p50_ttft_s": table["ttft_s"][50],
            "p99_ttft_s": table["ttft_s"][99],
            "p50_tbt_s": table["tbt_s"][50],
            "p99_tbt_s": table["tbt_s"][99],
            "slo_attainment": self.slo_attainment(),
            "requests": float(self.latency.count),
            "squashed": float(self.squashed_requests),
        }


def compare_energy(summaries: Dict[str, RunSummary], baseline: str = "SinglePool") -> Dict[str, float]:
    """Normalised energy of each policy relative to a baseline run."""
    if baseline not in summaries:
        raise KeyError(f"baseline {baseline!r} missing from summaries")
    base = summaries[baseline].energy.total_wh
    if base <= 0:
        return {name: 1.0 for name in summaries}
    return {name: summary.energy.total_wh / base for name, summary in summaries.items()}
