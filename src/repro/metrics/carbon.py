"""Operational carbon emissions (paper Figure 16, Section V-F).

The paper maps the cluster's energy over time onto grid carbon-intensity
traces (WattTime / CAISO).  Without access to those feeds we use a
synthetic CAISO-like intensity profile: a pronounced midday dip (solar)
and higher intensity overnight and during the evening ramp.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 24 * SECONDS_PER_HOUR


@dataclass(frozen=True)
class CarbonIntensityTrace:
    """Time-varying grid carbon intensity in kgCO2 per kWh.

    Parameters
    ----------
    base_intensity:
        Mean intensity (kg/kWh).  CAISO averages roughly 0.25 kg/kWh.
    solar_dip:
        Fractional reduction at the midday solar peak.
    evening_ramp:
        Fractional increase during the evening ramp (gas peakers).
    """

    name: str = "caiso-like"
    base_intensity: float = 0.25
    solar_dip: float = 0.45
    evening_ramp: float = 0.25

    def intensity_at(self, time_s: float) -> float:
        """Carbon intensity (kg/kWh) at ``time_s`` seconds from Monday 00:00."""
        hour = (time_s % SECONDS_PER_DAY) / SECONDS_PER_HOUR
        solar = math.exp(-((hour - 12.5) ** 2) / (2.0 * 3.0 ** 2))
        evening = math.exp(-((hour - 19.5) ** 2) / (2.0 * 2.0 ** 2))
        factor = 1.0 - self.solar_dip * solar + self.evening_ramp * evening
        return max(0.02, self.base_intensity * factor)

    def series(self, duration_s: float, step_s: float = 3600.0) -> List[Tuple[float, float]]:
        """Sampled intensity curve over ``duration_s``."""
        points = []
        time = 0.0
        while time < duration_s:
            points.append((time, self.intensity_at(time)))
            time += step_s
        return points


@dataclass
class CarbonAccount:
    """Streaming CO2 accounting, accumulated per scheduling step.

    The streaming counterpart of the post-hoc
    :func:`carbon_emissions_kg` over an energy timeline: the
    :class:`~repro.api.observers.CarbonObserver` feeds each step's energy
    through the time-varying intensity as the simulation runs, so totals
    are available without retaining the energy timeline (and agree with
    the post-hoc computation exactly — same per-step terms, same order).
    """

    intensity: CarbonIntensityTrace = field(default_factory=CarbonIntensityTrace)
    total_kg: float = 0.0
    timeline: List[Tuple[float, float]] = field(default_factory=list)  # (time, kg/step)

    def add_step(self, time: float, energy_wh: float) -> None:
        """Record one simulation step's emissions."""
        kg = (energy_wh / 1000.0) * self.intensity.intensity_at(time)
        self.total_kg += kg
        self.timeline.append((time, kg))

    def compact(self) -> "CarbonAccount":
        """Store the per-step timeline as a flat array (lean transfers).

        ``(time, kg)`` rows keep iterating identically, so
        :meth:`binned_kg_per_h` is unaffected; only the pickled size
        shrinks (the list grows with simulated duration otherwise).
        """
        import numpy as np

        if self.timeline and not isinstance(self.timeline, np.ndarray):
            self.timeline = np.asarray(self.timeline, dtype=float)
        return self

    def binned_kg_per_h(self, bin_seconds: float = 3600.0) -> List[Tuple[float, float]]:
        """Emission rate (kg/h) aggregated into fixed bins (Figure 16)."""
        if bin_seconds <= 0:
            raise ValueError("bin_seconds must be positive")
        bins: Dict[int, float] = {}
        for time, kg in self.timeline:
            index = int(time // bin_seconds)
            bins[index] = bins.get(index, 0.0) + kg
        hours_per_bin = bin_seconds / 3600.0
        return [(index * bin_seconds, bins[index] / hours_per_bin) for index in sorted(bins)]


def carbon_emissions_kg(
    energy_timeline_wh: Sequence[Tuple[float, float]],
    intensity: CarbonIntensityTrace,
) -> float:
    """Total operational CO2 (kg) for a (time, energy-Wh) timeline."""
    total = 0.0
    for time, energy_wh in energy_timeline_wh:
        total += (energy_wh / 1000.0) * intensity.intensity_at(time)
    return total


def carbon_timeline_kg_per_h(
    energy_timeline_wh: Sequence[Tuple[float, float]],
    intensity: CarbonIntensityTrace,
    bin_seconds: float = 3600.0,
) -> List[Tuple[float, float]]:
    """Hourly CO2 emission rate (kg/h) over time (the Figure 16 curves)."""
    bins = {}
    for time, energy_wh in energy_timeline_wh:
        index = int(time // bin_seconds)
        bins.setdefault(index, 0.0)
        bins[index] += (energy_wh / 1000.0) * intensity.intensity_at(time)
    hours_per_bin = bin_seconds / 3600.0
    return [(index * bin_seconds, bins[index] / hours_per_bin) for index in sorted(bins)]
