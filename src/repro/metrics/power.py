"""Power time series (paper Figure 8: cluster power and per-GPU power)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np


@dataclass
class PowerTimeSeries:
    """Per-step cluster power and derived per-GPU power."""

    samples: List[Tuple[float, float, int]] = field(default_factory=list)

    def add_step(self, time: float, power_watts: float, online_gpus: int) -> None:
        self.samples.append((time, power_watts, online_gpus))

    @property
    def count(self) -> int:
        return len(self.samples)

    def cluster_power(self) -> np.ndarray:
        return np.asarray([power for _, power, _ in self.samples], dtype=float)

    def per_gpu_power(self) -> np.ndarray:
        values = [
            power / gpus if gpus > 0 else 0.0 for _, power, gpus in self.samples
        ]
        return np.asarray(values, dtype=float)

    def cluster_percentile(self, percentile: float) -> float:
        values = self.cluster_power()
        return float(np.percentile(values, percentile)) if values.size else 0.0

    def per_gpu_percentile(self, percentile: float) -> float:
        values = self.per_gpu_power()
        return float(np.percentile(values, percentile)) if values.size else 0.0

    def percentile_table(self, percentiles=(50, 90, 99)) -> Dict[str, Dict[int, float]]:
        """Cluster (kW) and per-GPU (W) power percentiles, Figure 8's rows."""
        return {
            "cluster_kw": {
                int(p): self.cluster_percentile(p) / 1000.0 for p in percentiles
            },
            "per_gpu_w": {int(p): self.per_gpu_percentile(p) for p in percentiles},
        }

    def mean_cluster_power(self) -> float:
        values = self.cluster_power()
        return float(values.mean()) if values.size else 0.0

    def power_at_times(self) -> List[Tuple[float, float]]:
        return [(time, power) for time, power, _ in self.samples]

    def compact(self) -> "PowerTimeSeries":
        """Store samples as a flat float array (lean transfers).

        ``(time, power, gpus)`` rows keep unpacking identically, so every
        derived statistic is unchanged; only the pickled size shrinks.
        """
        if self.samples and not isinstance(self.samples, np.ndarray):
            self.samples = np.asarray(self.samples, dtype=float)
        return self
