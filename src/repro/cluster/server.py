"""GPU server abstraction: GPU slots, instance placement, idle power."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.instance import InferenceInstance
from repro.llm.gpu import ServerSpec, DGX_H100

_SERVER_COUNTER = itertools.count()


@dataclass
class Server:
    """One inference server (e.g. a DGX with 8 H100s).

    The server tracks which of its GPU slots are assigned to which
    instance so that tensor-parallel groups never span servers and the
    cluster can account idle power for unassigned GPUs on powered-on
    servers.
    """

    spec: ServerSpec = DGX_H100
    server_id: str = field(default_factory=lambda: f"server-{next(_SERVER_COUNTER)}")
    online: bool = True
    _slots: Dict[int, Optional[str]] = field(init=False)

    def __post_init__(self) -> None:
        self._slots = {index: None for index in range(self.spec.gpus_per_server)}

    # ------------------------------------------------------------------
    @property
    def total_gpus(self) -> int:
        return self.spec.gpus_per_server

    @property
    def free_gpus(self) -> int:
        return sum(1 for owner in self._slots.values() if owner is None)

    @property
    def used_gpus(self) -> int:
        return self.total_gpus - self.free_gpus

    def instances_hosted(self) -> List[str]:
        return sorted({owner for owner in self._slots.values() if owner is not None})

    def can_host(self, gpu_count: int) -> bool:
        return self.online and self.free_gpus >= gpu_count

    def allocate(self, instance: InferenceInstance) -> List[int]:
        """Assign GPU slots to an instance; returns the slot indices."""
        needed = instance.gpu_count
        if not self.can_host(needed):
            raise ValueError(
                f"server {self.server_id} cannot host {needed} GPUs "
                f"(free: {self.free_gpus}, online: {self.online})"
            )
        assigned: List[int] = []
        for index, owner in self._slots.items():
            if owner is None:
                self._slots[index] = instance.instance_id
                assigned.append(index)
                if len(assigned) == needed:
                    break
        return assigned

    def release(self, instance_id: str) -> int:
        """Free all slots owned by an instance; returns how many were freed."""
        freed = 0
        for index, owner in self._slots.items():
            if owner == instance_id:
                self._slots[index] = None
                freed += 1
        return freed

    def resize_allocation(self, instance_id: str, new_gpu_count: int) -> None:
        """Adjust the number of slots held by an instance (re-sharding)."""
        current = [index for index, owner in self._slots.items() if owner == instance_id]
        if new_gpu_count < len(current):
            for index in current[new_gpu_count:]:
                self._slots[index] = None
        elif new_gpu_count > len(current):
            additional = new_gpu_count - len(current)
            free = [index for index, owner in self._slots.items() if owner is None]
            if len(free) < additional:
                raise ValueError(
                    f"server {self.server_id} lacks {additional} free GPUs to grow "
                    f"instance {instance_id}"
                )
            for index in free[:additional]:
                self._slots[index] = instance_id

    def idle_gpu_power(self) -> float:
        """Idle power of unassigned GPUs (with their host share), when powered on.

        The host power of *assigned* GPUs is attributed to their instances
        by :class:`repro.perf.power_model.PowerModel`, so only the free
        slots' share is accounted here to avoid double counting.
        """
        if not self.online:
            return 0.0
        per_gpu_host_share = self.spec.host_idle_watts / self.spec.gpus_per_server
        return self.free_gpus * (self.spec.gpu.idle_watts + per_gpu_host_share)
