"""Deprecation plumbing for names that moved out of :mod:`repro.cluster`.

The shared leaf hardware cost models (frequency-switch overheads, VM
boot breakdowns) migrated down into :mod:`repro.core.hw` so the
controller layer owns them.  The historical ``repro.cluster.frequency``
and ``repro.cluster.vm`` locations keep re-exporting them through
module-level ``__getattr__`` hooks that funnel into the warn-once
helper below, in the style of the earlier ``experiments.runner`` shims.
"""

from __future__ import annotations

import warnings
from typing import Set

_DEPRECATIONS_WARNED: Set[str] = set()


def warn_moved_once(key: str, old: str, new: str) -> None:
    """Warn (once per process per name) that ``old`` now lives at ``new``."""
    if key in _DEPRECATIONS_WARNED:
        return
    _DEPRECATIONS_WARNED.add(key)
    # stacklevel 3: attribute the warning to the shim's caller.
    warnings.warn(
        f"{old} moved to {new}; import it from there "
        "(the repro.cluster alias will be removed)",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_deprecation_warnings() -> None:
    """Re-arm the once-per-process shim warnings (for tests)."""
    _DEPRECATIONS_WARNED.clear()
