"""GPU frequency control with switching overheads.

Changing the GPU frequency through ``nvidia-smi`` costs 50-80 ms per
change (Section III-C, Figure 3), which is on the order of one or two
decode iterations.  DynamoLLM reduces this to a few milliseconds by
keeping the management interface resident and running privileged
(Section IV-C).  The controller below tracks the current frequency of
an instance's GPUs and charges the switching penalty as lost serving
time, so policies that thrash the frequency pay for it in throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Tuple

from repro.cluster.compat import warn_moved_once
from repro.core import hw
from repro.llm.gpu import GPUSpec, H100

#: Switch-overhead constants moved down to :mod:`repro.core.hw`; the old
#: module-level names are served by ``__getattr__`` with a deprecation
#: warning (they must not be real module attributes, or the shim would
#: never fire).
_MOVED_TO_HW = ("DEFAULT_SWITCH_OVERHEAD_S", "OPTIMIZED_SWITCH_OVERHEAD_S")


def __getattr__(name: str) -> Any:
    if name in _MOVED_TO_HW:
        warn_moved_once(
            f"frequency.{name}",
            f"repro.cluster.frequency.{name}",
            f"repro.core.hw.{name}",
        )
        return getattr(hw, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class FrequencyController:
    """Tracks and changes the operating frequency of one instance.

    Parameters
    ----------
    gpu:
        GPU spec providing the valid frequency range.
    initial_frequency_mhz:
        Frequency the instance starts at (defaults to the maximum).
    optimized:
        Whether DynamoLLM's low-overhead switching path is in use.
    """

    gpu: GPUSpec = H100
    initial_frequency_mhz: int = 0
    optimized: bool = True
    _current: int = field(init=False)
    _pending_penalty_s: float = field(default=0.0, init=False)
    _switch_count: int = field(default=0, init=False)
    _history: List[Tuple[float, int]] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.initial_frequency_mhz <= 0:
            self.initial_frequency_mhz = self.gpu.max_frequency_mhz
        self.gpu.validate_frequency(self.initial_frequency_mhz)
        self._current = self.initial_frequency_mhz
        self._history.append((0.0, self._current))

    @property
    def current_frequency_mhz(self) -> int:
        return self._current

    @property
    def switch_count(self) -> int:
        return self._switch_count

    @property
    def switch_overhead_s(self) -> float:
        return (
            hw.OPTIMIZED_SWITCH_OVERHEAD_S
            if self.optimized
            else hw.DEFAULT_SWITCH_OVERHEAD_S
        )

    @property
    def history(self) -> List[Tuple[float, int]]:
        """List of (time, frequency) change points, starting at time 0."""
        return list(self._history)

    def set_frequency(self, frequency_mhz: int, now: float = 0.0) -> bool:
        """Request a frequency change; returns True if a change occurred."""
        self.gpu.validate_frequency(frequency_mhz)
        if frequency_mhz == self._current:
            return False
        self._current = int(frequency_mhz)
        self._switch_count += 1
        self._pending_penalty_s += self.switch_overhead_s
        self._history.append((now, self._current))
        return True

    def consume_penalty(self, available_s: float) -> float:
        """Deduct pending switch penalties from available serving time.

        Returns the serving time remaining after paying (part of) the
        accumulated penalty.  Any unpaid penalty carries over.
        """
        if available_s <= 0:
            return 0.0
        paid = min(self._pending_penalty_s, available_s)
        self._pending_penalty_s -= paid
        return available_s - paid

    def frequency_at(self, time_s: float) -> int:
        """Frequency that was in effect at a given time (from history)."""
        frequency = self._history[0][1]
        for change_time, value in self._history:
            if change_time <= time_s:
                frequency = value
            else:
                break
        return frequency
