"""LLM inference instance simulator.

An instance is a tensor-parallel group of GPUs serving one model with
continuous batching (vLLM-style).  The simulator advances in discrete
time steps; within a step it admits waiting requests into the running
batch (subject to KV-cache capacity), interleaves prefill and decode
work according to the analytical latency model, and accounts power and
energy.  Sub-step interpolation gives requests millisecond-resolution
TTFT/TBT even with one-second simulation steps.

Reconfiguration hooks model the overheads of Section IV-C: re-sharding
transfers and engine synchronisation make the instance degraded or
offline for a while, and frequency switches cost a small slice of
serving time unless the optimised switching path is enabled.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.cluster.frequency import FrequencyController
from repro.llm.catalog import ModelSpec
from repro.llm.gpu import ServerSpec, DGX_H100
from repro.perf.config import InstanceConfig
from repro.perf.latency_model import LatencyModel, MAX_BATCH
from repro.perf.power_model import PowerModel
from repro.workload.classification import classify_request, equivalent_prompt_tokens
from repro.workload.request import Request, RequestOutcome

_INSTANCE_COUNTER = itertools.count()


@dataclass(slots=True)
class RequestState:
    """Mutable execution state of one request inside an instance."""

    request: Request
    enqueue_time: float
    admitted_time: Optional[float] = None
    remaining_prefill: int = field(init=False)
    type_name: str = field(init=False)
    generated_tokens: int = 0
    first_token_time: Optional[float] = None
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        self.remaining_prefill = self.request.input_tokens
        # Classification is a pure function of the request's true token
        # lengths; caching it here keeps it off the per-step token loops.
        self.type_name = classify_request(self.request).name

    @property
    def prefill_done(self) -> bool:
        return self.remaining_prefill <= 0

    @property
    def done(self) -> bool:
        return self.prefill_done and self.generated_tokens >= self.request.output_tokens

    @property
    def context_tokens(self) -> int:
        """Tokens currently resident in the KV cache for this request."""
        consumed_prefill = self.request.input_tokens - self.remaining_prefill
        return consumed_prefill + self.generated_tokens


@dataclass(slots=True)
class StepStats:
    """Per-step accounting emitted by :meth:`InferenceInstance.step`."""

    time: float
    duration: float
    power_watts: float
    energy_wh: float
    prefill_tokens: int
    decode_tokens: int
    batch_size: int
    queue_length: int
    frequency_mhz: int
    energy_by_type_wh: Dict[str, float] = field(default_factory=dict)


class InferenceInstance:
    """A tensor-parallel model instance with continuous batching."""

    def __init__(
        self,
        model: ModelSpec,
        tensor_parallelism: int,
        pool: str = "default",
        request_type: str = "MM",
        server: ServerSpec = DGX_H100,
        frequency_mhz: Optional[int] = None,
        optimized_frequency_switching: bool = True,
        instance_id: Optional[str] = None,
        record_history: bool = True,
    ) -> None:
        self.instance_id = instance_id or f"inst-{next(_INSTANCE_COUNTER)}"
        self.model = model
        self.server = server
        self.pool = pool
        self.request_type = request_type
        self.tensor_parallelism = tensor_parallelism
        self.latency = LatencyModel(model, server)
        self.power_model = PowerModel(server)
        self.frequency = FrequencyController(
            gpu=server.gpu,
            initial_frequency_mhz=frequency_mhz or server.gpu.max_frequency_mhz,
            optimized=optimized_frequency_switching,
        )
        self.waiting: Deque[RequestState] = deque()
        self.running: List[RequestState] = []
        self.completed: List[RequestOutcome] = []
        self.total_energy_wh = 0.0
        self.energy_by_type_wh: Dict[str, float] = {}
        self.offline_until = 0.0
        self.degraded_until = 0.0
        self.degraded_factor = 1.0
        self.accepting = True
        self._decode_carry = 0.0
        self._load_ema_tps = 0.0
        self._arrived_tokens_step = 0
        #: Whether per-step :class:`StepStats` are retained.  Lean sweeps
        #: disable this (wired from the engine) so memory stays O(1) in
        #: the number of steps instead of O(steps x instances).
        self.record_history = record_history
        self._step_history: List[StepStats] = []
        # Incrementally tracked min enqueue_time of the waiting queue;
        # ``None`` means "recompute on next oldest_wait_s call".
        self._oldest_enqueue: Optional[float] = None
        # Incrementally tracked KV accounting over ``running``:
        # ``_kv_tokens``  == sum(input - remaining_prefill + generated)
        # ``_reserved_tokens`` == sum(input + generated)
        # Both are exact integers updated at every mutation of the batch
        # (admit / prefill / decode / finish), replacing O(batch) rescans
        # on the step hot path.
        self._kv_tokens = 0
        self._reserved_tokens = 0
        # States whose decode finished this step; lets _finish_completed
        # skip rebuilding ``running`` on the (common) no-completion steps.
        self._finished_pending: List[RequestState] = []
        # Idle instance power memoised per (tp, frequency): the power
        # model is a pure function, and zero-activity steps dominate in
        # scaled-up fleets.
        self._idle_power_cache: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    @property
    def config(self) -> InstanceConfig:
        return InstanceConfig(self.tensor_parallelism, self.frequency.current_frequency_mhz)

    @property
    def gpu_count(self) -> int:
        return self.tensor_parallelism

    def set_frequency(self, frequency_mhz: int, now: float = 0.0) -> bool:
        """Change the GPU frequency (pays the switching overhead)."""
        return self.frequency.set_frequency(frequency_mhz, now)

    def begin_resharding(
        self,
        new_tensor_parallelism: int,
        now: float,
        transfer_time_s: float,
        sync_time_s: float,
        requires_downtime: bool,
    ) -> None:
        """Start a re-sharding operation decided by the pool manager.

        During the weight transfer the instance keeps serving at reduced
        throughput; during the engine synchronisation it is either fully
        offline (when memory does not allow the old and new engines to
        coexist) or continues serving on the old configuration.
        """
        self.tensor_parallelism = new_tensor_parallelism
        self.degraded_until = max(self.degraded_until, now + transfer_time_s)
        self.degraded_factor = 0.7
        if requires_downtime:
            self.offline_until = max(self.offline_until, now + transfer_time_s + sync_time_s)
        else:
            # Seamless switch-over: only the transfer degradation applies.
            self.degraded_until = max(self.degraded_until, now + transfer_time_s + sync_time_s)

    def mark_offline(self, until: float) -> None:
        self.offline_until = max(self.offline_until, until)

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    def enqueue(self, request: Request, now: float) -> RequestState:
        """Add a request to the instance's waiting queue."""
        state = RequestState(request=request, enqueue_time=now)
        self.waiting.append(state)
        self._note_enqueued(state)
        self._arrived_tokens_step += self._equivalent_tokens(state)
        return state

    def _equivalent_tokens(self, state: RequestState) -> float:
        """Prompt tokens converted to this instance's governing-type units."""
        return equivalent_prompt_tokens(
            state.request.input_tokens, state.type_name, self.request_type
        )

    def _note_enqueued(self, state: RequestState) -> None:
        """Maintain the cached waiting-queue minimum on append."""
        cached = self._oldest_enqueue
        if cached is not None and state.enqueue_time < cached:
            self._oldest_enqueue = state.enqueue_time
        elif cached is None and len(self.waiting) == 1:
            self._oldest_enqueue = state.enqueue_time

    def _note_removed(self, state: RequestState) -> None:
        """Invalidate the cached minimum when its holder leaves the queue."""
        if state.enqueue_time == self._oldest_enqueue:
            self._oldest_enqueue = None

    def steal_waiting(self, count: int) -> List[RequestState]:
        """Remove up to ``count`` not-yet-started requests (for re-steering)."""
        stolen: List[RequestState] = []
        while self.waiting and len(stolen) < count:
            state = self.waiting.pop()
            self._note_removed(state)
            stolen.append(state)
        return stolen

    def adopt(self, states: Sequence[RequestState], now: float) -> None:
        """Accept request states re-steered from another instance."""
        for state in states:
            self.waiting.append(state)
            self._note_enqueued(state)
            self._arrived_tokens_step += self._equivalent_tokens(state)

    def squash_stale(self, now: float, wait_threshold_s: float) -> List[RequestOutcome]:
        """Drop waiting requests that exceeded the squash threshold."""
        kept: Deque[RequestState] = deque()
        squashed: List[RequestOutcome] = []
        for state in self.waiting:
            if now - state.enqueue_time > wait_threshold_s:
                squashed.append(
                    RequestOutcome(
                        request=state.request,
                        pool=self.pool,
                        instance_id=self.instance_id,
                        start_time=state.enqueue_time,
                        first_token_time=now,
                        completion_time=now,
                        squashed=True,
                    )
                )
            else:
                kept.append(state)
        for outcome in squashed:
            if outcome.start_time == self._oldest_enqueue:
                self._oldest_enqueue = None
        self.waiting = kept
        self.completed.extend(squashed)
        return squashed

    def reorder_queue_by_deadline(
        self, slo_lookup: Callable[[Request], float]
    ) -> None:
        """Earliest-deadline-first reordering of the waiting queue.

        ``slo_lookup`` maps a request to its TTFT SLO in seconds.
        """
        ordered = sorted(
            self.waiting, key=lambda s: s.enqueue_time + slo_lookup(s.request)
        )
        self.waiting = deque(ordered)

    # ------------------------------------------------------------------
    # Introspection used by the controllers
    # ------------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        return len(self.waiting)

    @property
    def batch_size(self) -> int:
        return len(self.running)

    @property
    def active_requests(self) -> int:
        return len(self.waiting) + len(self.running)

    @property
    def kv_tokens_used(self) -> int:
        # Maintained incrementally at every batch mutation; equal to
        # sum(state.context_tokens for state in self.running).
        return self._kv_tokens

    @property
    def kv_capacity(self) -> float:
        return self.latency.kv_capacity_tokens(self.config)

    @property
    def load_estimate_tps(self) -> float:
        """Exponentially-smoothed offered prompt-token load (tokens/s)."""
        return self._load_ema_tps

    def oldest_wait_s(self, now: float) -> float:
        if not self.waiting:
            return 0.0
        oldest = self._oldest_enqueue
        if oldest is None:
            oldest = min(state.enqueue_time for state in self.waiting)
            self._oldest_enqueue = oldest
        return now - oldest

    def is_offline(self, now: float) -> bool:
        return now < self.offline_until

    def drain_completed(self) -> List[RequestOutcome]:
        outcomes = self.completed
        self.completed = []
        return outcomes

    @property
    def step_history(self) -> List[StepStats]:
        return self._step_history

    # ------------------------------------------------------------------
    # Simulation step
    # ------------------------------------------------------------------
    def step(self, now: float, dt: float) -> StepStats:
        """Advance the instance by ``dt`` seconds starting at ``now``."""
        config = self.config
        available = dt

        # Downtime from reconfiguration.
        if now < self.offline_until:
            overlap = min(self.offline_until, now + dt) - now
            available -= overlap
        # Throughput degradation while weights are being transferred.
        if available > 0 and now < self.degraded_until:
            degraded_overlap = min(self.degraded_until, now + dt) - max(now, self.offline_until)
            if degraded_overlap > 0:
                available -= degraded_overlap * (1.0 - self.degraded_factor)
        # Frequency-switch penalties.
        available = self.frequency.consume_penalty(max(0.0, available))

        prefill_tokens = 0
        decode_tokens = 0
        tokens_by_type: Dict[str, int] = {}
        cursor = now + (dt - available)

        if available > 0:
            if self.waiting:
                self._admit(now)
            if self.running:
                prefill_tokens, cursor = self._run_prefill(config, available, cursor, tokens_by_type)
                decode_time = max(0.0, available - (prefill_tokens / max(1.0, self.latency.prefill_rate(config))))
                decode_tokens = self._run_decode(config, decode_time, now, dt, tokens_by_type)
                self._finish_completed(now, dt)

        # Power/energy accounting.  Idle steps (no tokens processed)
        # evaluate to activity == 0.0 exactly, so the pure power-model
        # call is memoised per configuration.
        if prefill_tokens == 0 and decode_tokens == 0:
            key = (config.tp, config.frequency_mhz)
            cached_power = self._idle_power_cache.get(key)
            if cached_power is None:
                cached_power = self.power_model.instance_power(
                    config.tp, config.frequency_mhz, 0.0
                )
                self._idle_power_cache[key] = cached_power
            power = cached_power
        else:
            busy_prefill = (
                prefill_tokens / self.latency.prefill_rate(config) / dt if dt > 0 else 0.0
            )
            batch = max(1, len(self.running)) if decode_tokens > 0 else len(self.running)
            decode_power_factor = 0.35 + 0.55 * min(1.0, batch / 64.0)
            decode_busy = 0.0
            if decode_tokens > 0 and dt > 0:
                iteration = self.latency.iteration_time(config, batch, self._average_context())
                decode_busy = min(1.0, decode_tokens / max(1, batch) * iteration / dt)
            activity = min(1.0, busy_prefill + decode_busy * decode_power_factor)
            power = self.power_model.instance_power(
                config.tp, config.frequency_mhz, activity
            )
        energy_wh = power * dt / 3600.0
        self.total_energy_wh += energy_wh

        energy_by_type = self._attribute_energy(energy_wh, tokens_by_type)
        for type_name, value in energy_by_type.items():
            self.energy_by_type_wh[type_name] = (
                self.energy_by_type_wh.get(type_name, 0.0) + value
            )

        # Load EMA update (per-step arrivals, in governing-type units).
        instant_tps = self._arrived_tokens_step / dt if dt > 0 else 0.0
        alpha = min(1.0, dt / 30.0)
        self._load_ema_tps = (1 - alpha) * self._load_ema_tps + alpha * instant_tps
        self._arrived_tokens_step = 0

        stats = StepStats(
            time=now,
            duration=dt,
            power_watts=power,
            energy_wh=energy_wh,
            prefill_tokens=prefill_tokens,
            decode_tokens=decode_tokens,
            batch_size=len(self.running),
            queue_length=len(self.waiting),
            frequency_mhz=config.frequency_mhz,
            energy_by_type_wh=energy_by_type,
        )
        if self.record_history:
            self._step_history.append(stats)
        return stats

    # ------------------------------------------------------------------
    # Step internals
    # ------------------------------------------------------------------
    def _admit(self, now: float) -> None:
        capacity = self.kv_capacity
        # Reserve KV space for admitted requests up front (their prompts will
        # occupy the cache as soon as they are prefetched), so admission does
        # not overshoot the cache just because prefill has not run yet.
        # max(context_tokens, input_tokens) == input_tokens + generated_tokens:
        # while prefill is pending generated_tokens is 0 and context < input;
        # once prefill finishes context == input + generated >= input.
        # ``reserved`` mirrors the historical from-scratch sum (existing
        # batch at input+generated, newly admitted at input only) while
        # the instance-level counters track the exact batch invariants —
        # adopted mid-flight states can carry generated tokens, so the
        # two can legitimately differ within this loop.
        reserved = self._reserved_tokens
        while self.waiting and len(self.running) < MAX_BATCH:
            candidate = self.waiting[0]
            projected = reserved + candidate.request.input_tokens
            if projected > capacity and self.running:
                break
            state = self.waiting.popleft()
            self._note_removed(state)
            state.admitted_time = now
            reserved = projected
            self._reserved_tokens += (
                state.request.input_tokens + state.generated_tokens
            )
            self._kv_tokens += (
                state.request.input_tokens
                - state.remaining_prefill
                + state.generated_tokens
            )
            self.running.append(state)

    def _run_prefill(
        self,
        config: InstanceConfig,
        available: float,
        cursor: float,
        tokens_by_type: Dict[str, int],
    ) -> Tuple[int, float]:
        rate = self.latency.prefill_rate(config)
        # ``prefill_done`` / ``done`` are inlined in the step loops below:
        # these run once per state per step and property dispatch is the
        # dominant cost at large batch sizes.
        pending = [state for state in self.running if state.remaining_prefill > 0]
        if not pending:
            return 0, cursor
        decoding = any(state.remaining_prefill <= 0 for state in self.running)
        # Cap prefill at 60% of the step when decodes are in flight so that
        # decode progress (TBT) is not starved by long prompts.
        budget_s = available * (0.6 if decoding else 1.0)
        budget_tokens = int(budget_s * rate)
        processed = 0
        for state in pending:
            if budget_tokens <= 0:
                break
            chunk = min(state.remaining_prefill, budget_tokens)
            state.remaining_prefill -= chunk
            budget_tokens -= chunk
            processed += chunk
            cursor += chunk / rate
            if state.remaining_prefill <= 0 and state.first_token_time is None:
                # A request can never see its first token earlier than its
                # arrival plus the isolated prefill latency (requests routed
                # mid-step would otherwise appear to finish before arriving).
                isolated = self.latency.prefill_time(config, state.request.input_tokens)
                state.first_token_time = max(
                    cursor, state.request.arrival_time + isolated
                )
            type_name = state.type_name
            tokens_by_type[type_name] = tokens_by_type.get(type_name, 0) + chunk
        self._kv_tokens += processed
        return processed, cursor

    def _run_decode(
        self,
        config: InstanceConfig,
        decode_time: float,
        now: float,
        dt: float,
        tokens_by_type: Dict[str, int],
    ) -> int:
        self._finished_pending = []
        decoders = [
            state
            for state in self.running
            if state.remaining_prefill <= 0
            and state.generated_tokens < state.request.output_tokens
        ]
        if not decoders or decode_time <= 0:
            return 0
        batch = len(decoders)
        iteration = self.latency.iteration_time(config, batch, self._average_context())
        iterations = decode_time / iteration + self._decode_carry
        whole_iterations = int(iterations)
        self._decode_carry = iterations - whole_iterations
        if whole_iterations <= 0:
            return 0
        produced = 0
        finished = self._finished_pending
        for state in decoders:
            remaining = state.request.output_tokens - state.generated_tokens
            tokens = min(remaining, whole_iterations)
            if tokens <= 0:
                continue
            state.generated_tokens += tokens
            produced += tokens
            if tokens == remaining:
                # A request only ever completes through decode (outputs
                # are >= 1 token), so collecting finishers here lets
                # _finish_completed skip the batch rebuild entirely on
                # steps where nothing completed.
                finished.append(state)
            type_name = state.type_name
            tokens_by_type[type_name] = tokens_by_type.get(type_name, 0) + tokens
        self._kv_tokens += produced
        self._reserved_tokens += produced
        return produced

    def _finish_completed(self, now: float, dt: float) -> None:
        # Completion only happens through _run_decode (every request has
        # >= 1 output token), which records finishers in order; steps
        # where nothing completed skip the O(batch) rebuild.
        finished = self._finished_pending
        if not finished:
            return
        self._finished_pending = []
        done_ids = {id(state) for state in finished}
        self.running = [s for s in self.running if id(s) not in done_ids]
        released = 0
        for state in finished:
            released += state.request.input_tokens + state.generated_tokens
            first_token = state.first_token_time if state.first_token_time is not None else now + dt
            self.completed.append(
                RequestOutcome(
                    request=state.request,
                    pool=self.pool,
                    instance_id=self.instance_id,
                    start_time=state.enqueue_time,
                    first_token_time=first_token,
                    completion_time=now + dt,
                )
            )
        self._kv_tokens -= released
        self._reserved_tokens -= released

    def _average_context(self) -> float:
        if not self.running:
            return 1.0
        return max(1.0, self.kv_tokens_used / len(self.running))

    def _attribute_energy(
        self, energy_wh: float, tokens_by_type: Dict[str, int]
    ) -> Dict[str, float]:
        """Attribute the step's energy to request types by processed tokens."""
        total_tokens = sum(tokens_by_type.values())
        if total_tokens <= 0:
            # Idle energy goes to the instance's nominal request type.
            return {self.request_type: energy_wh}
        return {
            type_name: energy_wh * count / total_tokens
            for type_name, count in tokens_by_type.items()
        }
