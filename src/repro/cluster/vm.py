"""VM provisioning with cold-start overheads (paper Table V).

Creating a new 8xH100 inference server takes roughly 6-8 minutes when
done naively: VM creation, distributed-runtime initialisation, weight
download, engine setup and weight/KV installation.  DynamoLLM hides
most of this by caching weights in the cluster, booting from snapshots
with the engine pre-initialised, and creating VMs proactively in the
background before the epoch in which they are needed (Section IV-C).

The provisioner below models both paths: a request made with
``proactive=True`` (DynamoLLM) becomes ready after the much smaller
warm-boot delay; a reactive request (the ScaleInst baseline scaling on
the critical path) pays the full cold-boot delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List

from repro.cluster.compat import warn_moved_once
from repro.core import hw

#: The boot-time breakdowns (paper Table V) moved down to
#: :mod:`repro.core.hw`; the old module-level names are served by
#: ``__getattr__`` with a deprecation warning (they must not be real
#: module attributes, or the shim would never fire).
_MOVED_TO_HW = (
    "COLD_BOOT_BREAKDOWN_S",
    "WARM_BOOT_BREAKDOWN_S",
    "cold_boot_time_s",
    "warm_boot_time_s",
)


def __getattr__(name: str) -> Any:
    if name in _MOVED_TO_HW:
        warn_moved_once(
            f"vm.{name}",
            f"repro.cluster.vm.{name}",
            f"repro.core.hw.{name}",
        )
        return getattr(hw, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class ProvisioningRequest:
    """An in-flight server provisioning operation."""

    server_id: str
    requested_at: float
    ready_at: float
    proactive: bool

    def is_ready(self, now: float) -> bool:
        return now >= self.ready_at


@dataclass
class VMProvisioner:
    """Models the latency of bringing new servers online.

    Parameters
    ----------
    proactive:
        Whether scale-outs are requested ahead of the epoch (DynamoLLM)
        or on the critical path (baselines).
    """

    proactive: bool = True
    _pending: List[ProvisioningRequest] = field(default_factory=list, init=False)
    _completed: List[ProvisioningRequest] = field(default_factory=list, init=False)

    def boot_time_s(self, proactive: bool) -> float:
        return hw.warm_boot_time_s() if proactive else hw.cold_boot_time_s()

    def request_server(self, server_id: str, now: float) -> ProvisioningRequest:
        """Start provisioning a server; returns the in-flight request."""
        ready_at = now + self.boot_time_s(self.proactive)
        request = ProvisioningRequest(
            server_id=server_id,
            requested_at=now,
            ready_at=ready_at,
            proactive=self.proactive,
        )
        self._pending.append(request)
        return request

    def collect_ready(self, now: float) -> List[ProvisioningRequest]:
        """Return (and retire) the requests that completed by ``now``."""
        ready = [r for r in self._pending if r.is_ready(now)]
        self._pending = [r for r in self._pending if not r.is_ready(now)]
        self._completed.extend(ready)
        return ready

    @property
    def pending(self) -> List[ProvisioningRequest]:
        return list(self._pending)

    @property
    def completed(self) -> List[ProvisioningRequest]:
        return list(self._completed)

    def pending_count(self) -> int:
        return len(self._pending)
