"""VM provisioning with cold-start overheads (paper Table V).

Creating a new 8xH100 inference server takes roughly 6-8 minutes when
done naively: VM creation, distributed-runtime initialisation, weight
download, engine setup and weight/KV installation.  DynamoLLM hides
most of this by caching weights in the cluster, booting from snapshots
with the engine pre-initialised, and creating VMs proactively in the
background before the epoch in which they are needed (Section IV-C).

The provisioner below models both paths: a request made with
``proactive=True`` (DynamoLLM) becomes ready after the much smaller
warm-boot delay; a reactive request (the ScaleInst baseline scaling on
the critical path) pays the full cold-boot delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


#: Breakdown of the naive instance-creation overheads (seconds), Table V.
COLD_BOOT_BREAKDOWN_S: Dict[str, float] = {
    "create_vm": 90.0,
    "init_distributed_env": 120.0,
    "download_weights": 180.0,
    "setup_engine": 18.0,
    "install_weights_kv": 15.0,
}

#: Breakdown with DynamoLLM's optimisations: weights cached locally,
#: snapshot boot with pre-initialised engine, so only the snapshot
#: restore and weight installation remain.
WARM_BOOT_BREAKDOWN_S: Dict[str, float] = {
    "restore_snapshot": 20.0,
    "install_weights_kv": 15.0,
}


def cold_boot_time_s() -> float:
    """Total naive instance-creation time (about 7 minutes)."""
    return sum(COLD_BOOT_BREAKDOWN_S.values())


def warm_boot_time_s() -> float:
    """Total optimised instance-creation time."""
    return sum(WARM_BOOT_BREAKDOWN_S.values())


@dataclass
class ProvisioningRequest:
    """An in-flight server provisioning operation."""

    server_id: str
    requested_at: float
    ready_at: float
    proactive: bool

    def is_ready(self, now: float) -> bool:
        return now >= self.ready_at


@dataclass
class VMProvisioner:
    """Models the latency of bringing new servers online.

    Parameters
    ----------
    proactive:
        Whether scale-outs are requested ahead of the epoch (DynamoLLM)
        or on the critical path (baselines).
    """

    proactive: bool = True
    _pending: List[ProvisioningRequest] = field(default_factory=list, init=False)
    _completed: List[ProvisioningRequest] = field(default_factory=list, init=False)

    def boot_time_s(self, proactive: bool) -> float:
        return warm_boot_time_s() if proactive else cold_boot_time_s()

    def request_server(self, server_id: str, now: float) -> ProvisioningRequest:
        """Start provisioning a server; returns the in-flight request."""
        ready_at = now + self.boot_time_s(self.proactive)
        request = ProvisioningRequest(
            server_id=server_id,
            requested_at=now,
            ready_at=ready_at,
            proactive=self.proactive,
        )
        self._pending.append(request)
        return request

    def collect_ready(self, now: float) -> List[ProvisioningRequest]:
        """Return (and retire) the requests that completed by ``now``."""
        ready = [r for r in self._pending if r.is_ready(now)]
        self._pending = [r for r in self._pending if not r.is_ready(now)]
        self._completed.extend(ready)
        return ready

    @property
    def pending(self) -> List[ProvisioningRequest]:
        return list(self._pending)

    @property
    def completed(self) -> List[ProvisioningRequest]:
        return list(self._completed)

    def pending_count(self) -> int:
        return len(self._pending)
