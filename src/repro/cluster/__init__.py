"""Discrete-time cluster simulator.

This package is the substrate that replaces the paper's physical DGX
H100 cluster: GPU servers, LLM inference instances with continuous
batching, DVFS with switching overheads, and VM provisioning with the
cold-start costs of Table V.  These objects implement the protocols the
controllers in :mod:`repro.core` are written against
(:mod:`repro.core.interfaces`) and are injected into the framework at
the composition roots — ``core`` never imports this package.
"""

from repro.cluster.frequency import FrequencyController
from repro.cluster.vm import VMProvisioner, ProvisioningRequest
from repro.cluster.instance import InferenceInstance, RequestState
from repro.cluster.server import Server
from repro.cluster.cluster import GPUCluster

__all__ = [
    "FrequencyController",
    "VMProvisioner",
    "ProvisioningRequest",
    "InferenceInstance",
    "RequestState",
    "Server",
    "GPUCluster",
]
