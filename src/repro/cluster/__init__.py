"""Discrete-time cluster simulator.

This package is the substrate that replaces the paper's physical DGX
H100 cluster: GPU servers, LLM inference instances with continuous
batching, DVFS with switching overheads, and VM provisioning with the
cold-start costs of Table V.  Controllers (in :mod:`repro.core`) operate
on these objects exactly as they would drive real servers.
"""

from repro.cluster.frequency import FrequencyController
from repro.cluster.vm import VMProvisioner, ProvisioningRequest
from repro.cluster.instance import InferenceInstance, RequestState
from repro.cluster.server import Server
from repro.cluster.cluster import GPUCluster

__all__ = [
    "FrequencyController",
    "VMProvisioner",
    "ProvisioningRequest",
    "InferenceInstance",
    "RequestState",
    "Server",
    "GPUCluster",
]
