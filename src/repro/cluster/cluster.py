"""The GPU cluster: servers, instances, provisioning and accounting.

The cluster is the single object policies manipulate: they create and
remove instances, re-shard them, change frequencies (via the instance),
and scale the number of powered servers.  Each simulation step the
cluster advances every instance, sums power (active instances plus the
idle power of unassigned GPUs on powered servers), and collects the
finished request outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.instance import InferenceInstance, RequestState
from repro.cluster.server import Server
from repro.cluster.vm import VMProvisioner
from repro.llm.catalog import ModelSpec
from repro.llm.gpu import ServerSpec, DGX_H100
from repro.workload.request import RequestOutcome


@dataclass
class ClusterStepStats:
    """Aggregate accounting for one cluster simulation step."""

    time: float
    duration: float
    power_watts: float
    energy_wh: float
    online_servers: int
    online_gpus: int
    active_gpus: int
    average_frequency_mhz: float
    gpus_by_tp: Dict[int, int] = field(default_factory=dict)
    energy_by_type_wh: Dict[str, float] = field(default_factory=dict)
    pool_power_watts: Dict[str, float] = field(default_factory=dict)
    pool_gpus_by_tp: Dict[str, Dict[int, int]] = field(default_factory=dict)
    pool_frequency_mhz: Dict[str, float] = field(default_factory=dict)
    outcomes: List[RequestOutcome] = field(default_factory=list)

    @property
    def average_gpu_power_watts(self) -> float:
        if self.online_gpus == 0:
            return 0.0
        return self.power_watts / self.online_gpus


class GPUCluster:
    """A collection of GPU servers hosting LLM inference instances."""

    def __init__(
        self,
        model: ModelSpec,
        server_spec: ServerSpec = DGX_H100,
        initial_servers: int = 1,
        max_servers: int = 64,
        proactive_provisioning: bool = True,
        optimized_frequency_switching: bool = True,
        record_history: bool = True,
    ) -> None:
        if initial_servers < 0 or max_servers <= 0:
            raise ValueError("server counts must be positive")
        if initial_servers > max_servers:
            raise ValueError("initial_servers cannot exceed max_servers")
        self.model = model
        self.server_spec = server_spec
        self.max_servers = max_servers
        self.optimized_frequency_switching = optimized_frequency_switching
        self.provisioner = VMProvisioner(proactive=proactive_provisioning)
        self.servers: Dict[str, Server] = {}
        self.instances: Dict[str, InferenceInstance] = {}
        self._instance_server: Dict[str, str] = {}
        # Pool membership never changes after creation, so instances are
        # indexed by pool up front — the controllers query pool rosters
        # every step and a full scan shows up in profiles.
        self._instances_by_pool: Dict[str, Dict[str, InferenceInstance]] = {}
        self.total_energy_wh = 0.0
        self.energy_by_type_wh: Dict[str, float] = {}
        #: Whether per-step :class:`ClusterStepStats` are retained; lean
        #: sweeps disable this (and history on new instances) so memory
        #: stays bounded over long horizons.
        self.record_history = record_history
        self.step_history: List[ClusterStepStats] = []
        self._gpu_seconds = 0.0
        for _ in range(initial_servers):
            self._add_server()

    # ------------------------------------------------------------------
    # Server management
    # ------------------------------------------------------------------
    def _add_server(self) -> Server:
        server = Server(spec=self.server_spec)
        self.servers[server.server_id] = server
        return server

    @property
    def online_servers(self) -> List[Server]:
        return [server for server in self.servers.values() if server.online]

    @property
    def online_server_count(self) -> int:
        return len(self.online_servers)

    @property
    def online_gpu_count(self) -> int:
        return sum(server.total_gpus for server in self.online_servers)

    @property
    def active_gpu_count(self) -> int:
        return sum(server.used_gpus for server in self.online_servers)

    @property
    def free_gpu_count(self) -> int:
        return sum(server.free_gpus for server in self.online_servers)

    @property
    def gpu_hours(self) -> float:
        """Accumulated powered GPU-hours (for the cost model)."""
        return self._gpu_seconds / 3600.0

    def scale_to(self, target_servers: int, now: float) -> int:
        """Adjust the number of powered servers towards ``target_servers``.

        Scale-out is subject to provisioning delays (new servers come
        online when their boot completes); scale-in only removes servers
        that host no instances.  Returns the number of servers whose
        state changed immediately.
        """
        target_servers = max(0, min(self.max_servers, target_servers))
        changed = 0
        current = self.online_server_count + self.provisioner.pending_count()
        if target_servers > current:
            for _ in range(target_servers - current):
                self.provisioner.request_server(f"pending-{now:.0f}-{changed}", now)
                changed += 1
        elif target_servers < self.online_server_count:
            removable = [
                server
                for server in self.online_servers
                if not server.instances_hosted()
            ]
            to_remove = self.online_server_count - target_servers
            for server in removable[:to_remove]:
                server.online = False
                changed += 1
        return changed

    def collect_provisioned(self, now: float) -> int:
        """Turn on servers whose provisioning completed; returns how many."""
        ready = self.provisioner.collect_ready(now)
        added = 0
        for _ in ready:
            # Re-use a powered-off server if available, otherwise add one.
            offline = [s for s in self.servers.values() if not s.online]
            if offline:
                offline[0].online = True
            elif len(self.servers) < self.max_servers:
                self._add_server()
            else:
                continue
            added += 1
        return added

    # ------------------------------------------------------------------
    # Instance management
    # ------------------------------------------------------------------
    def create_instance(
        self,
        tensor_parallelism: int,
        pool: str = "default",
        request_type: str = "MM",
        frequency_mhz: Optional[int] = None,
        ready_at: float = 0.0,
    ) -> Optional[InferenceInstance]:
        """Create an instance on any server with enough free GPUs.

        Returns ``None`` when no online server can host it.
        """
        host = self._find_host(tensor_parallelism, pool)
        if host is None:
            return None
        instance = InferenceInstance(
            model=self.model,
            tensor_parallelism=tensor_parallelism,
            pool=pool,
            request_type=request_type,
            server=self.server_spec,
            frequency_mhz=frequency_mhz,
            optimized_frequency_switching=self.optimized_frequency_switching,
            record_history=self.record_history,
        )
        if ready_at > 0:
            instance.mark_offline(ready_at)
        host.allocate(instance)
        self.instances[instance.instance_id] = instance
        self._instance_server[instance.instance_id] = host.server_id
        self._instances_by_pool.setdefault(pool, {})[instance.instance_id] = instance
        return instance

    def _find_host(self, gpu_count: int, pool: str) -> Optional[Server]:
        # Prefer servers already hosting the pool (locality), then best fit.
        candidates = [s for s in self.online_servers if s.can_host(gpu_count)]
        if not candidates:
            return None
        pool_instances = {
            self._instance_server[instance_id]
            for instance_id in self._instances_by_pool.get(pool, ())
        }
        candidates.sort(
            key=lambda s: (s.server_id not in pool_instances, s.free_gpus)
        )
        return candidates[0]

    def remove_instance(self, instance_id: str) -> List[RequestState]:
        """Remove an instance, returning any requests it had not started."""
        instance = self.instances.pop(instance_id, None)
        if instance is None:
            return []
        pool_index = self._instances_by_pool.get(instance.pool)
        if pool_index is not None:
            pool_index.pop(instance_id, None)
        server_id = self._instance_server.pop(instance_id, None)
        if server_id is not None:
            self.servers[server_id].release(instance_id)
        leftover = list(instance.waiting) + list(instance.running)
        return leftover

    def reshard_instance(
        self,
        instance_id: str,
        new_tensor_parallelism: int,
        now: float,
        transfer_time_s: float,
        sync_time_s: float,
        requires_downtime: bool,
    ) -> bool:
        """Re-shard an instance in place if its server has room."""
        instance = self.instances.get(instance_id)
        if instance is None:
            return False
        server = self.servers[self._instance_server[instance_id]]
        growth = new_tensor_parallelism - instance.gpu_count
        if growth > 0 and server.free_gpus < growth:
            return False
        server.resize_allocation(instance_id, new_tensor_parallelism)
        instance.begin_resharding(
            new_tensor_parallelism,
            now,
            transfer_time_s=transfer_time_s,
            sync_time_s=sync_time_s,
            requires_downtime=requires_downtime,
        )
        return True

    def instances_in_pool(self, pool: str) -> List[InferenceInstance]:
        pool_index = self._instances_by_pool.get(pool)
        if not pool_index:
            return []
        return list(pool_index.values())

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def step(self, now: float, dt: float, *, full_stats: bool = True) -> ClusterStepStats:
        """Advance every instance and account cluster power and energy.

        With ``full_stats=False`` (the engine's lean fast path, taken
        when no attached observer consumes timeline fields) the per-pool
        and per-TP breakdowns are skipped entirely: the returned stats
        carry the exact same scalar totals, ``energy_by_type_wh`` and
        ``outcomes``, but empty maps and zero ``active_gpus`` /
        ``average_frequency_mhz``.
        """
        self.collect_provisioned(now)
        power = 0.0
        energy_by_type: Dict[str, float] = {}
        pool_power: Dict[str, float] = {}
        pool_gpus: Dict[str, Dict[int, int]] = {}
        pool_freq_acc: Dict[str, List[float]] = {}
        gpus_by_tp: Dict[int, int] = {}
        outcomes: List[RequestOutcome] = []
        frequency_weighted = 0.0
        active_gpus = 0

        for instance in self.instances.values():
            stats = instance.step(now, dt)
            power += stats.power_watts
            if full_stats:
                active_gpus += instance.gpu_count
                frequency_weighted += stats.frequency_mhz * instance.gpu_count
                gpus_by_tp[instance.tensor_parallelism] = (
                    gpus_by_tp.get(instance.tensor_parallelism, 0) + instance.gpu_count
                )
                pool_power[instance.pool] = (
                    pool_power.get(instance.pool, 0.0) + stats.power_watts
                )
                pool_gpus.setdefault(instance.pool, {})
                pool_gpus[instance.pool][instance.tensor_parallelism] = (
                    pool_gpus[instance.pool].get(instance.tensor_parallelism, 0)
                    + instance.gpu_count
                )
                pool_freq_acc.setdefault(instance.pool, []).append(
                    float(stats.frequency_mhz)
                )
            for type_name, value in stats.energy_by_type_wh.items():
                energy_by_type[type_name] = energy_by_type.get(type_name, 0.0) + value
            outcomes.extend(instance.drain_completed())

        online = self.online_servers
        idle_power = sum(server.idle_gpu_power() for server in online)
        power += idle_power

        energy_wh = power * dt / 3600.0
        self.total_energy_wh += energy_wh
        for type_name, value in energy_by_type.items():
            self.energy_by_type_wh[type_name] = (
                self.energy_by_type_wh.get(type_name, 0.0) + value
            )
        online_gpus = sum(server.total_gpus for server in online)
        self._gpu_seconds += online_gpus * dt

        average_frequency = (
            frequency_weighted / active_gpus if active_gpus > 0 else 0.0
        )
        stats = ClusterStepStats(
            time=now,
            duration=dt,
            power_watts=power,
            energy_wh=energy_wh,
            online_servers=len(online),
            online_gpus=online_gpus,
            active_gpus=active_gpus,
            average_frequency_mhz=average_frequency,
            gpus_by_tp=gpus_by_tp,
            energy_by_type_wh=energy_by_type,
            pool_power_watts=pool_power,
            pool_gpus_by_tp=pool_gpus,
            pool_frequency_mhz={
                pool: sum(freqs) / len(freqs) for pool, freqs in pool_freq_acc.items()
            },
            outcomes=outcomes,
        )
        if self.record_history:
            self.step_history.append(stats)
        return stats
