#!/usr/bin/env python3
"""Quickstart: compare the six evaluated systems on a short trace.

Generates a 10-minute slice of the synthetic Conversation trace, runs
SinglePool, MultiPool, ScaleInst, ScaleShard, ScaleFreq and DynamoLLM on
the cluster simulator, and prints energy, latency and SLO attainment —
a miniature version of the paper's Figures 6 and 7.

Run with::

    python examples/quickstart.py [--duration 600] [--rate-scale 10]
"""

from __future__ import annotations

import argparse

from repro import quick_comparison


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=600.0, help="trace length in seconds")
    parser.add_argument("--rate-scale", type=float, default=10.0, help="load scale factor")
    parser.add_argument("--service", default="conversation", choices=("conversation", "coding"))
    args = parser.parse_args()

    results = quick_comparison(
        duration_s=args.duration, rate_scale=args.rate_scale, service=args.service
    )
    summaries = results["summaries"]
    normalized = results["normalized_energy"]

    header = (
        f"{'policy':12s} {'energy kWh':>11s} {'vs base':>8s} {'avg srv':>8s} "
        f"{'P50 TTFT':>9s} {'P99 TTFT':>9s} {'P99 TBT':>8s} {'SLO':>6s}"
    )
    print(header)
    print("-" * len(header))
    for name, summary in summaries.items():
        table = summary.latency.percentile_table()
        print(
            f"{name:12s} {summary.energy_kwh:11.3f} {normalized[name]:8.2f} "
            f"{summary.average_servers:8.2f} {table['ttft_s'][50]:9.3f} "
            f"{table['ttft_s'][99]:9.3f} {table['tbt_s'][99]:8.3f} "
            f"{summary.slo_attainment():6.3f}"
        )

    dynamo = summaries["DynamoLLM"]
    baseline = summaries["SinglePool"]
    saving = 1.0 - dynamo.energy_kwh / baseline.energy_kwh
    print()
    print(f"DynamoLLM saves {saving:.0%} energy vs SinglePool on this slice.")


if __name__ == "__main__":
    main()
