#!/usr/bin/env python3
"""Quickstart: compare the six evaluated systems on a short trace.

Runs ``repro.quick_comparison`` — a 10-minute slice of the synthetic
Conversation trace through all six policies on the unified engine API
(in parallel with ``--workers``) — and prints energy, latency and SLO
attainment: a miniature version of the paper's Figures 6 and 7.  See
the README for composing custom grids with ``repro.api.sweep``.

The same comparison is available from the command line::

    python -m repro sweep --policies SinglePool,MultiPool,ScaleInst,ScaleShard,ScaleFreq,DynamoLLM \
        --duration 600 --rate-scale 10 --workers 4

Run with::

    python examples/quickstart.py [--duration 600] [--rate-scale 10] [--workers 4]
"""

from __future__ import annotations

import argparse

from repro import quick_comparison


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=600.0, help="trace length in seconds")
    parser.add_argument("--rate-scale", type=float, default=10.0, help="load scale factor")
    parser.add_argument("--service", default="conversation", choices=("conversation", "coding"))
    parser.add_argument("--workers", type=int, default=None, help="parallel policy runs")
    args = parser.parse_args()

    results = quick_comparison(
        duration_s=args.duration,
        rate_scale=args.rate_scale,
        service=args.service,
        workers=args.workers,
    )
    summaries = results["summaries"]
    normalized = results["normalized_energy"]

    header = (
        f"{'policy':12s} {'energy kWh':>11s} {'vs base':>8s} {'avg srv':>8s} "
        f"{'P50 TTFT':>9s} {'P99 TTFT':>9s} {'P99 TBT':>8s} {'SLO':>6s}"
    )
    print(header)
    print("-" * len(header))
    for name, summary in summaries.items():
        table = summary.latency.percentile_table()
        print(
            f"{name:12s} {summary.energy_kwh:11.3f} {normalized[name]:8.2f} "
            f"{summary.average_servers:8.2f} {table['ttft_s'][50]:9.3f} "
            f"{table['ttft_s'][99]:9.3f} {table['tbt_s'][99]:8.3f} "
            f"{summary.slo_attainment():6.3f}"
        )

    dynamo = summaries["DynamoLLM"]
    baseline = summaries["SinglePool"]
    saving = 1.0 - dynamo.energy_kwh / baseline.energy_kwh
    print()
    print(f"DynamoLLM saves {saving:.0%} energy vs SinglePool on this slice.")


if __name__ == "__main__":
    main()
