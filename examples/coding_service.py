#!/usr/bin/env python3
"""Week-long study of the Coding service: all six systems (Figure 14).

The Coding workload has deep night and weekend valleys (peak/valley of
roughly 35x in the paper), which is where instance scaling pays off the
most.  This example runs the week-long binned trace through the fluid
simulator for every evaluated system and prints the normalised energy,
average server count and number of reconfigurations.

Run with::

    python examples/coding_service.py [--rate-scale 40] [--service coding]

(Request-level scenario sweeps over the same policies are available via
``python -m repro sweep``; the week-long studies stay on the fast fluid
simulator.)
"""

from __future__ import annotations

import argparse

from repro.experiments.fluid import FluidRunner
from repro.experiments.large_scale import week_bins
from repro.policies import ALL_POLICIES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate-scale", type=float, default=40.0)
    parser.add_argument("--service", default="coding", choices=("conversation", "coding"))
    args = parser.parse_args()

    bins = week_bins(args.service, rate_scale=args.rate_scale)
    runner = FluidRunner()
    results = runner.run_all(ALL_POLICIES, bins)
    baseline_energy = results["SinglePool"].energy_wh

    print(f"== {args.service.capitalize()} service, one week ==")
    print(
        f"{'policy':12s} {'energy kWh':>11s} {'normalized':>11s} "
        f"{'avg servers':>12s} {'reconfigs':>10s}"
    )
    for name, result in results.items():
        print(
            f"{name:12s} {result.energy_kwh:11.1f} "
            f"{result.energy_wh / baseline_energy:11.2f} "
            f"{result.average_servers:12.1f} {result.reconfigurations:10d}"
        )

    dynamo = results["DynamoLLM"]
    print(
        f"\nDynamoLLM weekly saving vs SinglePool: "
        f"{1.0 - dynamo.energy_wh / baseline_energy:.0%}"
    )


if __name__ == "__main__":
    main()
