#!/usr/bin/env python3
"""Week-long policy sweep on the fluid backend, streamed to JSONL.

Runs the six evaluated systems over the synthetic week trace (the
Figures 14-16 workload) through ``Scenario(backend="fluid")`` — a full
week per policy in well under a second — and streams one JSON record
per completed scenario to disk instead of accumulating summaries in
memory.  The sink is opened with ``resume=True``, so rerunning the
script (or restarting it after an interruption) skips the scenarios
already recorded and appends only the missing ones.  The same sweep is
available from the command line::

    python -m repro sweep --backend fluid --trace week --rate-scale 40 \
        --policies SinglePool,MultiPool,ScaleInst,ScaleShard,ScaleFreq,DynamoLLM \
        --out week.jsonl --resume

Run with::

    python examples/week_fluid_sweep.py [--service conversation] [--out week.jsonl]
"""

from __future__ import annotations

import argparse

from repro.api import JsonlSink, TraceSpec, read_jsonl, run_grid, sweep

POLICIES = ("SinglePool", "MultiPool", "ScaleInst", "ScaleShard", "ScaleFreq", "DynamoLLM")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--service", default="conversation", choices=("conversation", "coding"))
    parser.add_argument("--rate-scale", type=float, default=40.0, help="load scale factor")
    parser.add_argument("--out", default="week.jsonl", help="JSONL output path")
    parser.add_argument("--workers", type=int, default=None, help="parallel scenario runs")
    args = parser.parse_args()

    grid = sweep(
        policies=POLICIES,
        traces=(TraceSpec(kind="week", service=args.service, rate_scale=args.rate_scale),),
        backends=("fluid",),
    )
    # resume=True makes the sweep restartable: records already in the
    # file are kept (file sinks never truncate) and their scenarios are
    # skipped, so interrupting and rerunning costs only the missing runs.
    sink = run_grid(grid, workers=args.workers, sink=JsonlSink(args.out, resume=True))
    print(
        f"{sink.report.ran} ran, {sink.report.skipped} skipped, "
        f"{sink.report.failed} failed"
    )

    # The file may hold more than this sweep: error records carry only
    # {scenario, error}, and earlier runs with other parameters (a
    # different --rate-scale/--service) left their own records behind —
    # keep exactly the current grid's summaries for the table.
    keys = set(grid.keys())
    records = [
        r for r in read_jsonl(args.out)
        if not r.get("error") and r.get("scenario") in keys
    ]
    baseline = next(r for r in records if r["policy"] == "SinglePool")
    header = f"{'policy':12s} {'energy kWh':>11s} {'vs base':>8s} {'GPU-hours':>10s} {'kgCO2':>8s} {'reconf':>7s}"
    print(header)
    print("-" * len(header))
    for record in records:
        print(
            f"{record['policy']:12s} {record['energy_kwh']:11.1f} "
            f"{record['energy_kwh'] / baseline['energy_kwh']:8.2f} "
            f"{record['gpu_hours']:10.1f} {record['carbon_kg']:8.1f} "
            f"{record['reconfigurations']:7d}"
        )
    print(
        f"\n{sink.report.ran} week-long scenarios streamed to {args.out} "
        f"({len(records)} in the table)"
    )


if __name__ == "__main__":
    main()
