#!/usr/bin/env python3
"""Serve a day of the Conversation service and report energy and carbon.

This mirrors the paper's long cluster-level experiment (Figure 15) and
the carbon analysis (Figure 16) for the Conversation service: the
day-long synthetic trace is run through the fluid simulator with the
SinglePool baseline and DynamoLLM, and the script prints the 5-minute
energy series head, daily totals, carbon emissions and cost.

Run with::

    python examples/conversation_service.py [--rate-scale 40]

(The registry-backed equivalents are ``python -m repro bench figure15
figure16``; request-level runs of the same systems are one
``python -m repro run --policy DynamoLLM --trace one_hour`` away.)
"""

from __future__ import annotations

import argparse

from repro import CarbonIntensityTrace, CostModel
from repro.experiments.fluid import FluidRunner
from repro.experiments.large_scale import week_bins
from repro.policies import DYNAMO_LLM, SINGLE_POOL
from repro.workload.synthetic import SECONDS_PER_DAY


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate-scale", type=float, default=40.0)
    parser.add_argument("--service", default="conversation", choices=("conversation", "coding"))
    args = parser.parse_args()

    bins = week_bins(args.service, rate_scale=args.rate_scale, bin_seconds=300.0)
    day_bins = [b for b in bins if SECONDS_PER_DAY <= b.start_time < 2 * SECONDS_PER_DAY]

    runner = FluidRunner()
    baseline = runner.run(SINGLE_POOL, day_bins)
    dynamo = runner.run(DYNAMO_LLM, day_bins)

    print(f"== {args.service} service, one day ==")
    print(f"{'policy':12s} {'energy kWh':>11s} {'avg servers':>12s} {'GPU hours':>10s}")
    for result in (baseline, dynamo):
        print(
            f"{result.policy:12s} {result.energy_kwh:11.1f} "
            f"{result.average_servers:12.1f} {result.gpu_hours:10.1f}"
        )
    saving = 1.0 - dynamo.energy_wh / baseline.energy_wh
    print(f"\nDaily energy saving: {saving:.0%}")

    intensity = CarbonIntensityTrace()
    print(
        f"Carbon: SinglePool {baseline.carbon_kg(intensity):.1f} kg, "
        f"DynamoLLM {dynamo.carbon_kg(intensity):.1f} kg "
        f"({1.0 - dynamo.carbon_kg(intensity) / baseline.carbon_kg(intensity):.0%} saved)"
    )

    cost = CostModel()
    savings = cost.savings(
        baseline_gpu_hours=baseline.gpu_hours,
        baseline_energy_kwh=baseline.energy_kwh,
        optimized_gpu_hours=dynamo.gpu_hours,
        optimized_energy_kwh=dynamo.energy_kwh,
    )
    print(
        f"Cost: ${savings['baseline_cost_usd']:.0f} -> ${savings['optimized_cost_usd']:.0f} "
        f"({savings['saving_fraction']:.0%} cheaper for the customer)"
    )

    print("\nFirst hours of the 5-minute energy series (kWh per bin):")
    for (time, base_kwh), (_, dyn_kwh) in list(
        zip(
            ((t, wh / 1000.0) for t, wh in baseline.energy_timeline_wh),
            ((t, wh / 1000.0) for t, wh in dynamo.energy_timeline_wh),
        )
    )[:12]:
        hour = (time % SECONDS_PER_DAY) / 3600.0
        print(f"  {hour:5.2f} h   SinglePool {base_kwh:6.2f}   DynamoLLM {dyn_kwh:6.2f}")


if __name__ == "__main__":
    main()
