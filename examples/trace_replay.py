"""Replay a recorded invocation trace through the simulation engine.

The repository bundles two deterministic sample traces (the same
requests in both formats):

* ``sample_conversation.csv`` — the generic CSV format
  (``arrival_time,input_tokens,output_tokens,service``);
* ``sample_azure.csv`` — the Azure LLM-inference trace format
  (``TIMESTAMP,ContextTokens,GeneratedTokens`` with datetime stamps).

This example replays the CSV sample under SinglePool and DynamoLLM and
prints the streaming carbon / cost / per-pool SLO metrics that the
default observer set collects while the run executes.

The equivalent CLI one-liner::

    python -m repro run --trace-file src/repro/workload/data/sample_conversation.csv

Run from the repository root with ``PYTHONPATH=src python examples/trace_replay.py``.
"""

from __future__ import annotations

from repro.api import Scenario, TraceSpec, runs
from repro.workload.loaders import sample_trace_path


def main() -> None:
    spec = TraceSpec(kind="csv", path=sample_trace_path("csv"))
    print(f"replaying {spec.path}")
    print(f"scenario trace key: {spec.key}\n")

    scenarios = [
        Scenario(policy=policy, trace=spec)
        for policy in ("SinglePool", "DynamoLLM")
    ]
    for scenario, summary in zip(scenarios, runs(scenarios, lean=True)):
        print(f"== {scenario.policy_name}")
        print(f"   requests        {summary.latency.count}")
        print(f"   energy          {summary.energy_kwh:.3f} kWh")
        print(f"   carbon (stream) {summary.carbon.total_kg:.4f} kg CO2")
        print(f"   cost (stream)   ${summary.cost.total_usd:.2f} "
              f"(GPU ${summary.cost.gpu_cost_usd:.2f} + "
              f"energy ${summary.cost.energy_cost_usd:.2f})")
        print(f"   SLO attainment  {summary.slo_attainment():.3f}")
        for pool, attainment in summary.pool_slo_attainment.items():
            count = summary.pool_request_counts[pool]
            print(f"     {pool:3s} {attainment:.3f}  ({count} requests)")
        print()

    # Burst-preserving resampling: double the offered load of the same
    # trace without flattening its bursts, then clip to the first minute.
    dense = spec.with_(resample=2.0, duration_s=60.0)
    (summary,) = runs([Scenario(policy="DynamoLLM", trace=dense)], lean=True)
    print(f"== DynamoLLM on {dense.key}")
    print(f"   requests {summary.latency.count}, energy {summary.energy_kwh:.3f} kWh")


if __name__ == "__main__":
    main()
