#!/usr/bin/env python3
"""Capacity planning with energy-performance profiles (Tables I-III).

Uses the analytical energy model directly — no cluster simulation — to
answer the questions an operator would ask before deploying a service:

* which (TP, frequency) configuration serves each request type with the
  least energy at a given load (Table I),
* how the answer changes with load (Table II),
* and how it changes across models (Table III).

Run with::

    python examples/capacity_planning.py [--load 2000] [--model Llama2-70B]

The same tables can be regenerated (and timed) by artefact id via the
registry-backed CLI: ``python -m repro bench table1 table2 table3``.
"""

from __future__ import annotations

import argparse

from repro import EnergyModel, get_model
from repro.experiments.characterization import (
    best_configs_summary,
    format_heatmap,
    table1_energy_heatmap,
    table2_load_sweep,
    table3_model_sweep,
)
from repro.workload.classification import REQUEST_TYPE_NAMES, RequestType


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--load", type=float, default=2000.0, help="prompt tokens per second")
    parser.add_argument("--model", default="Llama2-70B")
    args = parser.parse_args()

    model = get_model(args.model)

    print(f"== Table I: energy (Wh/request) for {model.name} at {args.load:.0f} TPS ==")
    for line in format_heatmap(table1_energy_heatmap(model, args.load)):
        print(line)

    print("\n== Energy-optimal configuration per request type ==")
    for type_name, config in best_configs_summary(model, args.load).items():
        print(f"  {type_name}: {config or 'no feasible configuration'}")

    print("\n== Table II: MM requests across load levels ==")
    for line in format_heatmap(table2_load_sweep(model)):
        print(line)

    print("\n== Table III: MM requests across models ==")
    for line in format_heatmap(table3_model_sweep()):
        print(line)

    print("\n== Maximum per-instance load (prompt TPS) meeting the SLO ==")
    energy_model = EnergyModel(model)
    header = f"{'type':6s}" + "".join(f"{f'TP{tp}':>12s}" for tp in (2, 4, 8))
    print(header)
    for type_name in REQUEST_TYPE_NAMES:
        request_type = RequestType.from_name(type_name)
        cells = []
        for tp in (2, 4, 8):
            from repro.perf import InstanceConfig

            max_load = energy_model.max_load(request_type, InstanceConfig(tp, 1980))
            cells.append(f"{max_load:12.0f}")
        print(f"{type_name:6s}" + "".join(cells))


if __name__ == "__main__":
    main()
