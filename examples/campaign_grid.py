#!/usr/bin/env python3
"""Manifest-driven sensitivity campaign: shard, kill, resume, report.

Demonstrates the campaign layer end to end on the bundled
1008-scenario ``sensitivity_grid`` manifest (six systems x four pool
schemes x three load scales x fourteen trace seeds on the fluid
backend):

1. expand + validate the manifest and print the grid size;
2. run it in four deterministic shards (each shard streams into its own
   append-only results file, so the same split works across hosts);
3. roll up per-shard completion (``status``) and pivot the records into
   the paper-style energy-savings table (``report``).

Rerunning the script resumes: every shard skips the scenarios its
results file already records.  The identical flow is available from the
command line::

    python -m repro campaign validate sensitivity_grid
    python -m repro campaign run sensitivity_grid --shard 0/4 --out grid.jsonl
    ...                                           --shard 3/4 --out grid.jsonl
    python -m repro campaign status sensitivity_grid --out grid.jsonl
    python -m repro campaign report sensitivity_grid --out grid.jsonl

Run with::

    python examples/campaign_grid.py [--out grid.jsonl] [--workers N]
"""

from __future__ import annotations

import argparse
import time

from repro.api import CampaignRunner, load_manifest
from repro.experiments.manifests import manifest_path


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--manifest", default="sensitivity_grid",
                        help="bundled manifest name or path")
    parser.add_argument("--out", default="sensitivity_grid.jsonl",
                        help="results path (shard files derive from it)")
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel scenario runs per shard")
    args = parser.parse_args()

    from repro.experiments.manifests import resolve_manifest

    manifest = load_manifest(resolve_manifest(args.manifest))
    runner = CampaignRunner(manifest, out=args.out)
    grid = runner.validate()
    shards = manifest.shards
    print(f"{manifest.name}: {len(grid)} scenarios across {shards} shard(s)")

    started = time.perf_counter()
    for index in range(shards):
        shard_run = runner.run(shard=(index, shards), workers=args.workers)[0]
        report = shard_run.report
        print(
            f"  shard {index}/{shards}: {report.ran} ran, "
            f"{report.skipped} skipped, {report.failed} failed "
            f"-> {shard_run.path}"
        )
    elapsed = time.perf_counter() - started

    status = runner.status()
    print(
        f"status: {status.completed}/{status.total} completed, "
        f"{status.failed} failed, {status.pending} pending "
        f"({elapsed:.1f}s wall-clock this run)"
    )
    print()
    print(runner.report().format())


if __name__ == "__main__":
    main()
