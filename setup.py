"""Setup shim.

The environment used for this reproduction has no network access and no
``wheel`` package, so PEP 517 editable installs (``pip install -e .``)
cannot build the editable wheel.  This shim lets ``python setup.py
develop`` (or legacy ``pip install -e . --no-build-isolation``) install
the package from ``pyproject.toml`` metadata instead.
"""

from setuptools import setup

setup()
