"""Setup shim — all real metadata lives in ``pyproject.toml`` (PEP 621).

With network access, ``pip install -e .`` works out of the box (build
isolation provides setuptools + wheel) and installs the ``repro``
console script.  In the offline container used for this reproduction
there is no ``wheel`` package, so the PEP 517 editable-wheel path cannot
run; ``python setup.py develop`` remains as the fallback, installing the
same package and entry point from the pyproject metadata.
"""

from setuptools import setup

setup()
